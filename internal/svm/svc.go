package svm

import (
	"fmt"
	"math"

	"frac/internal/linalg"
	"frac/internal/rng"
)

// SVCParams configures linear support-vector classification.
type SVCParams struct {
	// C is the regularization trade-off. <= 0 selects 1.
	C float64
	// MaxIter bounds outer coordinate-descent passes. <= 0 selects 100.
	MaxIter int
	// Tol is the projected-gradient stopping tolerance. <= 0 selects 1e-3.
	Tol float64
	// Bias adds an intercept when true.
	Bias bool
	// Seed permutes coordinate order deterministically.
	Seed uint64
}

func (p SVCParams) withDefaults() SVCParams {
	if p.C <= 0 {
		p.C = 1
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 100
	}
	if p.Tol <= 0 {
		p.Tol = 1e-3
	}
	return p
}

// BinarySVC is a trained linear binary classifier; the decision value is
// wᵀx + b with positive meaning class true.
type BinarySVC struct {
	W []float64
	B float64
}

// TrainBinarySVC fits an L2-regularized L2-loss SVC by dual coordinate
// descent. labels[i] gives sample i's class.
func TrainBinarySVC(x *linalg.Matrix, labels []bool, params SVCParams) *BinarySVC {
	p := params.withDefaults()
	n, d := x.Rows, x.Cols
	if len(labels) != n {
		panic(fmt.Sprintf("svm: TrainBinarySVC %d samples but %d labels", n, len(labels)))
	}
	w := make([]float64, d)
	var b float64
	if n == 0 {
		return &BinarySVC{W: w}
	}
	diag := 0.5 / p.C // L2-loss diagonal term; upper bound is +inf
	y := make([]float64, n)
	for i, l := range labels {
		if l {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	alpha := make([]float64, n)
	qd := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		qd[i] = linalg.Dot(row, row) + diag
		if p.Bias {
			qd[i]++
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	src := rng.New(p.Seed ^ 0x9e3779b9)
	for iter := 0; iter < p.MaxIter; iter++ {
		src.Shuffle(order)
		maxPG := 0.0
		for _, i := range order {
			row := x.Row(i)
			g := y[i]*(linalg.Dot(w, row)+b*boolTo1(p.Bias)) - 1 + diag*alpha[i]
			pg := g
			if alpha[i] == 0 && g > 0 {
				pg = 0
			}
			if math.Abs(pg) > maxPG {
				maxPG = math.Abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			alpha[i] = math.Max(old-g/qd[i], 0)
			delta := (alpha[i] - old) * y[i]
			if delta != 0 {
				linalg.Axpy(delta, row, w)
				if p.Bias {
					b += delta
				}
			}
		}
		if maxPG < p.Tol {
			break
		}
	}
	return &BinarySVC{W: w, B: b}
}

// Decision returns the margin value wᵀx + b.
func (m *BinarySVC) Decision(x []float64) float64 {
	return linalg.Dot(m.W, x) + m.B
}

// Predict returns true when the decision value is positive.
func (m *BinarySVC) Predict(x []float64) bool { return m.Decision(x) > 0 }

// Bytes reports the model's analytic footprint.
func (m *BinarySVC) Bytes() int64 { return int64(len(m.W))*8 + 16 }

// MultiSVC is a one-vs-rest multiclass linear SVC over labels [0, K).
type MultiSVC struct {
	K      int
	Models []*BinarySVC // one per class
}

// TrainMultiSVC fits K one-vs-rest binary machines. labels must lie in
// [0, k).
func TrainMultiSVC(x *linalg.Matrix, labels []int, k int, params SVCParams) *MultiSVC {
	if k < 2 {
		panic(fmt.Sprintf("svm: TrainMultiSVC k=%d", k))
	}
	models := make([]*BinarySVC, k)
	bin := make([]bool, x.Rows)
	for c := 0; c < k; c++ {
		for i, l := range labels {
			bin[i] = l == c
		}
		params.Seed = params.Seed*31 + uint64(c) + 1
		models[c] = TrainBinarySVC(x, bin, params)
	}
	return &MultiSVC{K: k, Models: models}
}

// Predict returns the class with the largest one-vs-rest decision value.
func (m *MultiSVC) Predict(x []float64) int {
	best, bestVal := 0, math.Inf(-1)
	for c, mdl := range m.Models {
		if v := mdl.Decision(x); v > bestVal {
			best, bestVal = c, v
		}
	}
	return best
}

// PredictBatch classifies every row of x into out (len >= x.Rows) with zero
// allocations.
func (m *MultiSVC) PredictBatch(x *linalg.Matrix, out []int) {
	for i := 0; i < x.Rows; i++ {
		out[i] = m.Predict(x.Row(i))
	}
}

// Bytes reports the model's analytic footprint.
func (m *MultiSVC) Bytes() int64 {
	var b int64
	for _, mdl := range m.Models {
		b += mdl.Bytes()
	}
	return b
}
