package svm

import (
	"math"
	"testing"

	"frac/internal/linalg"
	"frac/internal/rng"
)

// linearProblem builds y = w·x + b + noise.
func linearProblem(n, d int, w []float64, b, noise float64, src *rng.Source) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = src.Norm()
		}
		y[i] = linalg.Dot(w, row) + b + src.Normal(0, noise)
	}
	return x, y
}

func TestSVRRecoversLinearFunction(t *testing.T) {
	src := rng.New(1)
	w := []float64{2, -1, 0.5}
	x, y := linearProblem(200, 3, w, 0.7, 0.05, src)
	m := TrainSVR(x, y, SVRParams{C: 10, Epsilon: 0.01, MaxIter: 500, Bias: true})
	// Held-out error should be small.
	xt, yt := linearProblem(50, 3, w, 0.7, 0.05, src)
	var mse float64
	for i := 0; i < xt.Rows; i++ {
		e := yt[i] - m.Predict(xt.Row(i))
		mse += e * e
	}
	mse /= float64(xt.Rows)
	if mse > 0.05 {
		t.Errorf("SVR test MSE = %v, want < 0.05", mse)
	}
	for j := range w {
		if math.Abs(m.W[j]-w[j]) > 0.15 {
			t.Errorf("w[%d] = %v, want ~%v", j, m.W[j], w[j])
		}
	}
	if math.Abs(m.B-0.7) > 0.15 {
		t.Errorf("bias = %v, want ~0.7", m.B)
	}
}

func TestSVRRegularizationShrinksWeights(t *testing.T) {
	src := rng.New(2)
	x, y := linearProblem(50, 5, []float64{3, 0, 0, 0, 0}, 0, 0.1, src)
	loose := TrainSVR(x, y, SVRParams{C: 10, MaxIter: 300})
	tight := TrainSVR(x, y, SVRParams{C: 0.001, MaxIter: 300})
	if linalg.Norm2(tight.W) >= linalg.Norm2(loose.W) {
		t.Errorf("stronger regularization should shrink ||w||: %v vs %v",
			linalg.Norm2(tight.W), linalg.Norm2(loose.W))
	}
}

func TestSVREdgeCases(t *testing.T) {
	// Empty training set.
	m := TrainSVR(linalg.NewMatrix(0, 3), nil, SVRParams{})
	if m.Predict([]float64{1, 2, 3}) != 0 {
		t.Error("empty-trained SVR should predict 0")
	}
	// Constant target: the bias is regularized (augmented-feature trick),
	// so a large C is needed to recover the constant exactly.
	x := linalg.NewMatrix(10, 2)
	y := make([]float64, 10)
	for i := range y {
		y[i] = 5
		x.Row(i)[0] = float64(i)
	}
	m = TrainSVR(x, y, SVRParams{C: 100, Bias: true, MaxIter: 500})
	if math.Abs(m.Predict([]float64{3, 0})-5) > 0.2 {
		t.Errorf("constant-target prediction = %v, want ~5", m.Predict([]float64{3, 0}))
	}
}

func TestSVRPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched sizes did not panic")
		}
	}()
	TrainSVR(linalg.NewMatrix(3, 2), []float64{1}, SVRParams{})
}

func TestBinarySVCSeparable(t *testing.T) {
	src := rng.New(3)
	n := 100
	x := linalg.NewMatrix(n, 2)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		x.Row(i)[0] = src.Norm()
		x.Row(i)[1] = src.Norm()
		labels[i] = x.Row(i)[0]+x.Row(i)[1] > 0
	}
	m := TrainBinarySVC(x, labels, SVCParams{C: 1, MaxIter: 300, Bias: true})
	errs := 0
	for i := 0; i < n; i++ {
		if m.Predict(x.Row(i)) != labels[i] {
			errs++
		}
	}
	if errs > 3 {
		t.Errorf("%d training errors on separable data", errs)
	}
}

func TestMultiSVC(t *testing.T) {
	src := rng.New(4)
	n := 150
	x := linalg.NewMatrix(n, 2)
	y := make([]int, n)
	centers := [][2]float64{{-3, 0}, {3, 0}, {0, 4}}
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		x.Row(i)[0] = centers[c][0] + src.Norm()*0.5
		x.Row(i)[1] = centers[c][1] + src.Norm()*0.5
	}
	m := TrainMultiSVC(x, y, 3, SVCParams{C: 1, MaxIter: 300, Bias: true})
	errs := 0
	for i := 0; i < n; i++ {
		if m.Predict(x.Row(i)) != y[i] {
			errs++
		}
	}
	if errs > 5 {
		t.Errorf("%d errors on well-separated 3-class data", errs)
	}
	if m.Bytes() <= 0 {
		t.Error("Bytes must be positive")
	}
}

func TestMultiSVCPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k=1 did not panic")
		}
	}()
	TrainMultiSVC(linalg.NewMatrix(2, 1), []int{0, 0}, 1, SVCParams{})
}
