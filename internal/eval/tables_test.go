package eval

import (
	"testing"
)

// Full pipeline tests at the coarse scale: Tables III–V and Fig. 3 run end
// to end and produce structurally correct output.

func coarseFull(t *testing.T) []Table2Row {
	t.Helper()
	rows, err := Table2(coarse())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestTable3EndToEnd(t *testing.T) {
	full := coarseFull(t)
	rows, err := Table3(full, coarse())
	if err != nil {
		t.Fatal(err)
	}
	// 7 replicated data sets x 3 variants.
	if len(rows) != 21 {
		t.Fatalf("%d rows, want 21", len(rows))
	}
	perVariant := map[string]int{}
	for _, r := range rows {
		perVariant[r.Variant]++
		if r.TimeFrac <= 0 {
			t.Errorf("%s/%s zero time fraction", r.Dataset, r.Variant)
		}
		if r.MemFrac <= 0 {
			t.Errorf("%s/%s zero mem fraction", r.Dataset, r.Variant)
		}
		if r.AUCFrac <= 0 {
			t.Errorf("%s/%s AUC fraction %v", r.Dataset, r.Variant, r.AUCFrac)
		}
	}
	for _, v := range []string{VariantRandomEnsemble, VariantJL, VariantEntropyFilter} {
		if perVariant[v] != 7 {
			t.Errorf("variant %s has %d rows", v, perVariant[v])
		}
	}
}

func TestTable4EndToEnd(t *testing.T) {
	full := coarseFull(t)
	rows, err := Table4(full, coarse())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	// Diverse at p=1/2 should cost roughly half the memory of the full run
	// on the larger data sets (the paper's ~0.5 column). Allow a broad band
	// at the tiny test scale.
	for _, r := range rows {
		if r.Variant != VariantDiverse {
			continue
		}
		if r.MemFrac < 0.2 || r.MemFrac > 1.2 {
			t.Errorf("%s diverse mem fraction %v far from ~0.5", r.Dataset, r.MemFrac)
		}
	}
}

func TestTable5EndToEnd(t *testing.T) {
	full := coarseFull(t)
	rows, err := Table5(full, coarse())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 (entropy, random, 3x JL)", len(rows))
	}
	if rows[0].Method != "Entropy Filtering" {
		t.Errorf("first row %q", rows[0].Method)
	}
	// The headline finding survives even at the tiny test scale (where only
	// a single drifted LD block exists): entropy filtering finds the
	// ancestry confound. At the reporting scale it reaches ~1.0
	// (EXPERIMENTS.md).
	if rows[0].AUC < 0.75 {
		t.Errorf("entropy filtering AUC = %v, want clearly above chance (ancestry confound)", rows[0].AUC)
	}
	// And beats the JL rows, as in the paper.
	for _, r := range rows[2:] {
		if r.AUC >= rows[0].AUC+0.01 {
			t.Errorf("JL row %q AUC %v >= entropy %v", r.Method, r.AUC, rows[0].AUC)
		}
	}
	// Table 5 must error without the extrapolated baseline.
	if _, err := Table5(nil, coarse()); err == nil {
		t.Error("missing baseline accepted")
	}
}

func TestFig3EndToEnd(t *testing.T) {
	pts, err := Fig3(coarse())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Dim < pts[i-1].Dim {
			t.Error("dims not increasing")
		}
	}
	for _, pt := range pts {
		if pt.AUC < 0.2 || pt.AUC > 1 {
			t.Errorf("dim %d AUC %v", pt.Dim, pt.AUC)
		}
	}
}

func TestAblationsEndToEnd(t *testing.T) {
	full := coarseFull(t)
	rows, err := Ablations(full, coarse())
	if err != nil {
		t.Fatal(err)
	}
	studies := map[string]int{}
	for _, r := range rows {
		studies[r.Study]++
	}
	want := map[string]int{
		"filtering-mode": 2, "jl-family": 3, "ensemble-combiner": 2,
		"error-model": 2, "jl-learner": 2,
	}
	for s, n := range want {
		if studies[s] != n {
			t.Errorf("study %s has %d configs, want %d", s, studies[s], n)
		}
	}
}

func TestBaselinesEndToEnd(t *testing.T) {
	rows, err := Baselines(coarse())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 expression sets x 3 methods
		t.Fatalf("%d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if r.AUC < 0.2 || r.AUC > 1 {
			t.Errorf("%s/%s AUC %v", r.Dataset, r.Method, r.AUC)
		}
	}
}
