package eval

import (
	"context"
	"fmt"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/jl"
	"frac/internal/rng"
	"frac/internal/svm"
	"frac/internal/synth"
	"frac/internal/tree"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Study, Config      string
	AUCFrac, AUCFracSD float64
	TimeFrac, MemFrac  float64
}

// Ablations runs the design-choice studies DESIGN.md calls out, on one
// representative expression profile and (where relevant) the SNP profiles:
//
//   - partial vs full filtering (the paper dropped partial as "consistently
//     worse in time, space, and AUC preservation")
//   - JL matrix family: Gaussian vs Rademacher vs sparse Achlioptas
//   - ensemble combiner: median (paper) vs mean
//   - continuous error model: Gaussian (paper) vs KDE
//   - JL-space learner: linear SVR vs entropy-minimizing trees (the paper's
//     model/preprocessing-compatibility observation)
func Ablations(full []Table2Row, o Options) ([]AblationRow, error) {
	o = o.WithDefaults()
	fullByName := map[string]Table2Row{}
	for _, r := range full {
		fullByName[r.Dataset] = r
	}
	profile, err := synth.ProfileByName("biomarkers")
	if err != nil {
		return nil, err
	}
	base, ok := fullByName["biomarkers"]
	if !ok {
		return nil, fmt.Errorf("ablations: Table II lacks biomarkers")
	}

	var rows []AblationRow
	add := func(study string, specs ...VariantSpec) error {
		vr, err := RunVariants(profile, base, specs, o)
		if err != nil {
			return fmt.Errorf("ablation %s: %w", study, err)
		}
		for _, r := range vr {
			rows = append(rows, AblationRow{
				Study: study, Config: r.Variant,
				AUCFrac: r.AUCFrac, AUCFracSD: r.AUCFracSD,
				TimeFrac: r.TimeFrac, MemFrac: r.MemFrac,
			})
		}
		return nil
	}

	// 1. Partial vs full filtering.
	if err := add("filtering-mode", SingleRandomFilterSpec(), PartialFilterSpec()); err != nil {
		return nil, err
	}

	// 2. JL families.
	jlFamily := func(f jl.Family) VariantSpec {
		return VariantSpec{
			Name: "jl-" + f.String(),
			Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
				res, err := core.RunJLCtx(ctx, rep.Train, rep.Test,
					core.JLSpec{Dim: o.ScaledJLDim(o.JLDim), Family: f}, src, cfg)
				if err != nil {
					return nil, err
				}
				return res.Scores, nil
			},
		}
	}
	if err := add("jl-family", jlFamily(jl.Gaussian), jlFamily(jl.Rademacher), jlFamily(jl.Achlioptas)); err != nil {
		return nil, err
	}

	// 3. Ensemble combiner.
	combiner := func(m core.CombineMethod) VariantSpec {
		return VariantSpec{
			Name: "combine-" + m.String(),
			Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
				return core.RunFilterEnsembleCtx(ctx, rep.Train, rep.Test, core.RandomFilter, o.FilterP,
					core.EnsembleSpec{Members: o.EnsembleMembers, Combine: m}, src, cfg)
			},
		}
	}
	if err := add("ensemble-combiner", combiner(core.CombineMedian), combiner(core.CombineMean)); err != nil {
		return nil, err
	}

	// 4. Continuous error model (full wiring, Gaussian vs KDE surprisal).
	errModel := func(name string, kde bool) VariantSpec {
		return VariantSpec{
			Name: "error-" + name,
			Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
				cfg.KDEError = kde
				res, _, err := core.RunFullFilteredCtx(ctx, rep.Train, rep.Test, core.RandomFilter, 0.25, src, cfg)
				if err != nil {
					return nil, err
				}
				return res.Scores, nil
			},
		}
	}
	if err := add("error-model", errModel("gaussian", false), errModel("kde", true)); err != nil {
		return nil, err
	}

	// 5. JL-space learner compatibility (paper §IV: entropy-minimizing
	// trees are not invariant under linear maps, so they underperform in
	// projected spaces).
	jlLearner := func(name string, learners core.Learners) VariantSpec {
		return VariantSpec{
			Name: "jl-learner-" + name,
			Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
				res, err := core.RunJLCtx(ctx, rep.Train, rep.Test,
					core.JLSpec{Dim: o.ScaledJLDim(o.JLDim), Learners: learners}, src, cfg)
				if err != nil {
					return nil, err
				}
				return res.Scores, nil
			},
		}
	}
	if err := add("jl-learner",
		jlLearner("svr", core.MixedLearners(svm.SVRParams{C: 0.01}, tree.Params{})),
		jlLearner("tree", core.TreeLearners(tree.Params{}))); err != nil {
		return nil, err
	}

	printAblations(o, rows)
	return rows, nil
}

func printAblations(o Options, rows []AblationRow) {
	w := o.out()
	fprintf(w, "\nAblations (biomarkers profile; fractions of the full run)\n")
	fprintf(w, "%-20s %-24s %14s %8s %8s\n", "study", "config", "AUC % (sd)", "Time %", "Mem %")
	prev := ""
	for _, r := range rows {
		study := r.Study
		if study == prev {
			study = ""
		} else {
			prev = r.Study
		}
		fprintf(w, "%-20s %-24s %6.2f (%.2f) %8.3f %8.3f\n",
			study, r.Config, r.AUCFrac, r.AUCFracSD, r.TimeFrac, r.MemFrac)
	}
}
