package eval

import (
	"context"
	"strings"
	"testing"

	"frac/internal/obs"
)

func TestTrainScalePoints(t *testing.T) {
	cases := []struct {
		scale int
		want  []int
	}{
		{16, []int{64, 256, 1024}}, // the default: the paper-regime sweep
		{64, []int{16, 64, 256}},
		{1024, []int{16}}, // floored points deduplicate
	}
	for _, c := range cases {
		o := Options{Scale: c.scale}.WithDefaults()
		got := TrainScalePoints(o)
		if len(got) != len(c.want) {
			t.Fatalf("scale %d: points = %v, want %v", c.scale, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("scale %d: points = %v, want %v", c.scale, got, c.want)
			}
		}
	}
}

// TestTrainScaleSweep runs the exhibit at a coarse scale: two rows per
// point (masked then gather), positive costs, and engagement verified
// through the telemetry counters.
func TestTrainScaleSweep(t *testing.T) {
	rec := obs.New()
	o := Options{Scale: 1024, Seed: 3, Obs: rec, Out: &strings.Builder{}}.WithDefaults()
	rows, err := TrainScale(o)
	if err != nil {
		t.Fatal(err)
	}
	points := TrainScalePoints(o)
	if len(rows) != 2*len(points) {
		t.Fatalf("%d rows for %d points", len(rows), len(points))
	}
	for i, r := range rows {
		if wantMasked := i%2 == 0; r.Masked != wantMasked {
			t.Errorf("row %d: Masked = %v, want %v", i, r.Masked, wantMasked)
		}
		if r.Features != points[i/2] {
			t.Errorf("row %d: Features = %d, want %d", i, r.Features, points[i/2])
		}
		if r.Cost.CPU <= 0 || r.Cost.PeakBytes <= 0 {
			t.Errorf("row %d: degenerate cost %+v", i, r.Cost)
		}
	}
	if rec.Count(obs.CounterTermsMasked) == 0 {
		t.Error("masked cells trained no masked terms")
	}
	if rec.Count(obs.CounterTermsGathered) == 0 {
		t.Error("gather cells trained no gathered terms")
	}
}

func TestTrainScaleHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Options{Ctx: ctx, Scale: 1024}.WithDefaults()
	if _, err := TrainScale(o); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}
