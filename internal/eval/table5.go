package eval

import (
	"context"
	"fmt"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/resource"
	"frac/internal/rng"
	"frac/internal/stats"
	"frac/internal/synth"
)

// Table5Row is one method's result on the schizophrenia construction: raw
// AUC (the full run was never executed, as in the paper) with time/memory
// as fractions of the Table II extrapolation.
type Table5Row struct {
	Method            string
	AUC, AUCSD        float64
	HasSD             bool
	TimeFrac, MemFrac float64
}

// Table5 reproduces the schizophrenia table: entropy filtering, the random
// filter ensemble, and JL pre-projection at three growing dimensions
// (paper: 1024/2048/4096; scaled by Options.Scale).
func Table5(full []Table2Row, o Options) ([]Table5Row, error) {
	o = o.WithDefaults()
	var base resource.Cost
	for _, r := range full {
		if r.Dataset == "schizophrenia" {
			base = r.Cost
		}
	}
	if base.CPU == 0 {
		return nil, fmt.Errorf("table5: Table II lacks the extrapolated schizophrenia row")
	}
	p, err := synth.ProfileByName("schizophrenia")
	if err != nil {
		return nil, err
	}
	reps, err := replicatesFor(p, o)
	if err != nil {
		return nil, err
	}
	rep := reps[0]

	var rows []Table5Row

	// Entropy filtering: deterministic given the training set — one run.
	entAUC, entCost, err := runScored(o.ctx(), p, o, rep, func(ctx context.Context, cfg core.Config) ([]float64, error) {
		res, _, err := core.RunFullFilteredCtx(ctx, rep.Train, rep.Test, core.EntropyFilter, o.FilterP,
			rng.New(o.Seed).Stream("t5-entropy"), cfg)
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	})
	if err != nil {
		return nil, fmt.Errorf("table5 entropy: %w", err)
	}
	tf, mf := entCost.Frac(base)
	rows = append(rows, Table5Row{Method: "Entropy Filtering", AUC: entAUC, TimeFrac: tf, MemFrac: mf})

	// Random filter ensemble: repeated with independent subsets for an sd.
	const randomRepeats = 3
	var randAgg stats.Welford
	var randCosts []resource.Cost
	for i := 0; i < randomRepeats; i++ {
		auc, cost, err := runScored(o.ctx(), p, o, rep, func(ctx context.Context, cfg core.Config) ([]float64, error) {
			return core.RunFilterEnsembleCtx(ctx, rep.Train, rep.Test, core.RandomFilter, o.FilterP,
				core.EnsembleSpec{Members: o.EnsembleMembers},
				rng.New(o.Seed).StreamN("t5-random", i), cfg)
		})
		if err != nil {
			return nil, fmt.Errorf("table5 random %d: %w", i, err)
		}
		randAgg.Add(auc)
		randCosts = append(randCosts, cost)
	}
	tf, mf = meanCost(randCosts).Frac(base)
	rows = append(rows, Table5Row{
		Method: "Ensemble of Random Filtering",
		AUC:    randAgg.Mean(), AUCSD: randAgg.StdDev(), HasSD: true,
		TimeFrac: tf, MemFrac: mf,
	})

	// JL at growing dimensions, JLRepeats independent projections each.
	for _, paperDim := range []int{1024, 2048, 4096} {
		dim := o.ScaledJLDim(paperDim)
		auc, sd, cost, err := jlPoint(p, o, rep, dim, o.JLRepeats)
		if err != nil {
			return nil, fmt.Errorf("table5 jl %d: %w", dim, err)
		}
		tf, mf = cost.Frac(base)
		rows = append(rows, Table5Row{
			Method: fmt.Sprintf("JL, %d comps (paper %d)", dim, paperDim),
			AUC:    auc, AUCSD: sd, HasSD: true,
			TimeFrac: tf, MemFrac: mf,
		})
	}
	printTable5(o, rows)
	return rows, nil
}

// jlPoint runs `repeats` independent JL projections at one dimension and
// aggregates AUC and cost — the primitive behind both Table V's JL rows and
// Fig. 3's data points. SNP-profile JL runs keep decision trees in the
// projected space, matching the paper's setup (and its observation that
// trees are not invariant under linear maps).
func jlPoint(p synth.Profile, o Options, rep dataset.Replicate, dim, repeats int) (mean, sd float64, cost resource.Cost, err error) {
	var agg stats.Welford
	var costs []resource.Cost
	for i := 0; i < repeats; i++ {
		auc, c, err := runScored(o.ctx(), p, o, rep, func(ctx context.Context, cfg core.Config) ([]float64, error) {
			spec := core.JLSpec{Dim: dim, Family: o.JLFamily}
			if p.SNP {
				spec.Learners = cfg.Learners // trees in projected space
			}
			res, err := core.RunJLCtx(ctx, rep.Train, rep.Test, spec,
				rng.New(o.Seed).StreamN(fmt.Sprintf("jl-%s-%d", p.Name, dim), i), cfg)
			if err != nil {
				return nil, err
			}
			return res.Scores, nil
		})
		if err != nil {
			return 0, 0, resource.Cost{}, err
		}
		agg.Add(auc)
		costs = append(costs, c)
	}
	return agg.Mean(), agg.StdDev(), meanCost(costs), nil
}

func printTable5(o Options, rows []Table5Row) {
	w := o.out()
	fprintf(w, "\nTable V — schizophrenia (raw AUC; time/mem vs extrapolated full run)\n")
	fprintf(w, "%-36s %14s %8s %8s\n", "method", "AUC (sd)", "Time %", "Mem %")
	for _, r := range rows {
		aucStr := fmt.Sprintf("%.2f (N/A)", r.AUC)
		if r.HasSD {
			aucStr = fmt.Sprintf("%.2f (%.2f)", r.AUC, r.AUCSD)
		}
		fprintf(w, "%-36s %14s %8.3f %8.3f\n", r.Method, aucStr, r.TimeFrac, r.MemFrac)
	}
}

// Fig3Point is one data point of Fig. 3: the JL dimension sweep on the
// schizophrenia data set.
type Fig3Point struct {
	Dim        int
	PaperDim   int
	AUC, AUCSD float64
}

// Fig3 sweeps the JL projected dimension on the schizophrenia construction,
// averaging JLRepeats independent projections per dimension, reproducing the
// paper's "projected d vs AUC" series (rising AUC with d).
func Fig3(o Options) ([]Fig3Point, error) {
	o = o.WithDefaults()
	p, err := synth.ProfileByName("schizophrenia")
	if err != nil {
		return nil, err
	}
	reps, err := replicatesFor(p, o)
	if err != nil {
		return nil, err
	}
	rep := reps[0]
	var pts []Fig3Point
	for _, paperDim := range []int{256, 512, 1024, 2048, 4096} {
		dim := o.ScaledJLDim(paperDim)
		mean, sd, _, err := jlPoint(p, o, rep, dim, o.JLRepeats)
		if err != nil {
			return nil, fmt.Errorf("fig3 dim %d: %w", dim, err)
		}
		pts = append(pts, Fig3Point{Dim: dim, PaperDim: paperDim, AUC: mean, AUCSD: sd})
	}
	w := o.out()
	fprintf(w, "\nFig. 3 — JL projected dimension vs AUC (schizophrenia, %d projections/point)\n", o.JLRepeats)
	fprintf(w, "%8s %10s %8s %8s\n", "dim", "paper dim", "AUC", "sd")
	for _, pt := range pts {
		fprintf(w, "%8d %10d %8.3f %8.3f\n", pt.Dim, pt.PaperDim, pt.AUC, pt.AUCSD)
	}
	renderFig3Chart(o, pts)
	return pts, nil
}

// renderFig3Chart draws the Fig. 3 series as a text chart: one column per
// dimension, 'o' at the mean AUC, '|' spanning mean ± sd.
func renderFig3Chart(o Options, pts []Fig3Point) {
	if len(pts) == 0 {
		return
	}
	lo, hi := 1.0, 0.0
	for _, pt := range pts {
		if v := pt.AUC - pt.AUCSD; v < lo {
			lo = v
		}
		if v := pt.AUC + pt.AUCSD; v > hi {
			hi = v
		}
	}
	lo -= 0.02
	hi += 0.02
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	const rows = 14
	step := (hi - lo) / rows
	if step <= 0 {
		return
	}
	w := o.out()
	fprintf(w, "\n")
	for r := rows; r >= 0; r-- {
		y := lo + float64(r)*step
		fprintf(w, "  %5.2f |", y)
		for _, pt := range pts {
			half := step / 2
			switch {
			case pt.AUC >= y-half && pt.AUC < y+half:
				fprintf(w, "    o    ")
			case pt.AUC-pt.AUCSD <= y && pt.AUC+pt.AUCSD >= y:
				fprintf(w, "    |    ")
			default:
				fprintf(w, "         ")
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "        +")
	for range pts {
		fprintf(w, "---------")
	}
	fprintf(w, "\n         ")
	for _, pt := range pts {
		fprintf(w, "%5d    ", pt.Dim)
	}
	fprintf(w, "  (projected dimension)\n")
}
