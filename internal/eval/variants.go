package eval

import (
	"context"
	"fmt"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/rng"
	"frac/internal/synth"
)

// Variant names used across tables and benches.
const (
	VariantRandomEnsemble  = "random-filter-ensemble"
	VariantJL              = "jl"
	VariantEntropyFilter   = "entropy-filter"
	VariantDiverse         = "diverse"
	VariantDiverseEnsemble = "diverse-ensemble"
	VariantRandomFilter    = "random-filter" // single member (stability ablation)
	VariantPartialFilter   = "partial-filter"
)

// RandomFilterEnsembleSpec is the paper's §III.B.1 configuration: 10 full
// random-filtered FRaCs at p = .05, median-combined.
func RandomFilterEnsembleSpec() VariantSpec {
	return VariantSpec{
		Name: VariantRandomEnsemble,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			return core.RunFilterEnsembleCtx(ctx, rep.Train, rep.Test, core.RandomFilter, o.FilterP,
				core.EnsembleSpec{Members: o.EnsembleMembers}, src, cfg)
		},
	}
}

// JLSpecVariant is the §III.B.3 configuration: JL pre-projection to the
// scaled 1024-dim space.
func JLSpecVariant() VariantSpec {
	return VariantSpec{
		Name: VariantJL,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			res, err := core.RunJLCtx(ctx, rep.Train, rep.Test,
				core.JLSpec{Dim: o.ScaledJLDim(o.JLDim), Family: o.JLFamily}, src, cfg)
			if err != nil {
				return nil, err
			}
			return res.Scores, nil
		},
	}
}

// EntropyFilterSpec keeps the top-entropy 5% of features (single run).
func EntropyFilterSpec() VariantSpec {
	return VariantSpec{
		Name: VariantEntropyFilter,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			res, _, err := core.RunFullFilteredCtx(ctx, rep.Train, rep.Test, core.EntropyFilter, o.FilterP, src, cfg)
			if err != nil {
				return nil, err
			}
			return res.Scores, nil
		},
	}
}

// DiverseSpec is the §III.B.2 single diverse run at p = 1/2.
func DiverseSpec() VariantSpec {
	return VariantSpec{
		Name: VariantDiverse,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			res, err := core.RunDiverseCtx(ctx, rep.Train, rep.Test, o.DiverseP, 1, src, cfg)
			if err != nil {
				return nil, err
			}
			return res.Scores, nil
		},
	}
}

// DiverseEnsembleSpec is the §III.B.2 ensemble: 10 diverse runs at p = 1/20.
func DiverseEnsembleSpec() VariantSpec {
	return VariantSpec{
		Name: VariantDiverseEnsemble,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			return core.RunDiverseEnsembleCtx(ctx, rep.Train, rep.Test, o.DiverseEnsembleP,
				core.EnsembleSpec{Members: o.EnsembleMembers}, src, cfg)
		},
	}
}

// SingleRandomFilterSpec is a lone filtered run (no ensemble): the unstable
// configuration the paper moved away from, kept for the stability ablation.
func SingleRandomFilterSpec() VariantSpec {
	return VariantSpec{
		Name: VariantRandomFilter,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			res, _, err := core.RunFullFilteredCtx(ctx, rep.Train, rep.Test, core.RandomFilter, o.FilterP, src, cfg)
			if err != nil {
				return nil, err
			}
			return res.Scores, nil
		},
	}
}

// PartialFilterSpec is partial filtering (models only for kept targets,
// trained on all features) — the configuration the paper found "consistently
// worse in time, space, and AUC preservation", kept for the ablation bench.
func PartialFilterSpec() VariantSpec {
	return VariantSpec{
		Name: VariantPartialFilter,
		Run: func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error) {
			res, _, err := core.RunPartialFilteredCtx(ctx, rep.Train, rep.Test, core.RandomFilter, o.FilterP, src, cfg)
			if err != nil {
				return nil, err
			}
			return res.Scores, nil
		},
	}
}

// Table3 runs the random-filter ensemble, JL, and entropy filtering over the
// six expression profiles plus autism, reporting fractions of the Table II
// full runs (the paper's Table III layout).
func Table3(full []Table2Row, o Options) ([]VariantRow, error) {
	return variantTable("Table III", full, o,
		[]VariantSpec{RandomFilterEnsembleSpec(), JLSpecVariant(), EntropyFilterSpec()})
}

// Table4 runs diverse and diverse-ensemble over the same profiles (the
// paper's Table IV).
func Table4(full []Table2Row, o Options) ([]VariantRow, error) {
	return variantTable("Table IV", full, o,
		[]VariantSpec{DiverseSpec(), DiverseEnsembleSpec()})
}

func variantTable(title string, full []Table2Row, o Options, specs []VariantSpec) ([]VariantRow, error) {
	o = o.WithDefaults()
	fullByName := map[string]Table2Row{}
	for _, r := range full {
		fullByName[r.Dataset] = r
	}
	var rows []VariantRow
	for _, p := range synth.Compendium() {
		if p.Confounded {
			continue // schizophrenia appears in Table V only
		}
		fullRow, ok := fullByName[p.Name]
		if !ok {
			return nil, fmt.Errorf("%s: no full-run row for %s", title, p.Name)
		}
		vr, err := RunVariants(p, fullRow, specs, o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, vr...)
	}
	printVariantTable(title, o, specs, rows)
	return rows, nil
}

func printVariantTable(title string, o Options, specs []VariantSpec, rows []VariantRow) {
	w := o.out()
	fprintf(w, "\n%s — fractions of the full run (AUC %% (sd) | Time %% | Mem %%)\n", title)
	fprintf(w, "%-15s", "data set")
	for _, s := range specs {
		fprintf(w, " | %-30s", s.Name)
	}
	fprintf(w, "\n")
	byDataset := map[string][]VariantRow{}
	var order []string
	for _, r := range rows {
		if _, seen := byDataset[r.Dataset]; !seen {
			order = append(order, r.Dataset)
		}
		byDataset[r.Dataset] = append(byDataset[r.Dataset], r)
	}
	sums := make([]struct{ auc, t, m float64 }, len(specs))
	for _, ds := range order {
		fprintf(w, "%-15s", ds)
		for si, s := range specs {
			for _, r := range byDataset[ds] {
				if r.Variant != s.Name {
					continue
				}
				fprintf(w, " | %.2f (%.2f) %6.3f %6.3f   ", r.AUCFrac, r.AUCFracSD, r.TimeFrac, r.MemFrac)
				sums[si].auc += r.AUCFrac
				sums[si].t += r.TimeFrac
				sums[si].m += r.MemFrac
			}
		}
		fprintf(w, "\n")
	}
	if len(order) > 0 {
		fprintf(w, "%-15s", "Avg")
		n := float64(len(order))
		for si := range specs {
			fprintf(w, " | %.2f        %6.3f %6.3f   ", sums[si].auc/n, sums[si].t/n, sums[si].m/n)
		}
		fprintf(w, "\n")
	}
}
