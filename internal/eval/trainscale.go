package eval

import (
	"fmt"
	"time"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/obs"
	"frac/internal/resource"
	"frac/internal/rng"
	"frac/internal/svm"
	"frac/internal/tree"
)

// TrainScaleRow is one cell of the train-scale sweep: full-FRaC training at
// one feature count through one training path.
type TrainScaleRow struct {
	// Features is the swept feature count f (the training set is n=32 × f,
	// all real — the n << f regime the masked path targets).
	Features int
	// Masked selects the shared-design-cache path; false forces the
	// per-term gather path via Config.DisableMaskedTrain.
	Masked bool
	// Cost is the training cost of the cell (wall, CPU, analytic peak).
	Cost resource.Cost
}

// trainScaleSamples is the fixed sample count of the sweep. Training cost is
// dominated by f·(f−1) predictor inputs, so n stays small and constant while
// f sweeps — the shape of the paper's expression data sets.
const trainScaleSamples = 32

// TrainScalePoints returns the swept feature counts: the paper-scale points
// {1024, 4096, 16384} divided by Options.Scale (floored at 16, deduplicated),
// so the default -scale 16 sweeps f ∈ {64, 256, 1024}.
func TrainScalePoints(o Options) []int {
	points := make([]int, 0, 3)
	for _, paperF := range []int{1024, 4096, 16384} {
		f := paperF / o.Scale
		if f < 16 {
			f = 16
		}
		if len(points) > 0 && points[len(points)-1] == f {
			continue
		}
		points = append(points, f)
	}
	return points
}

// trainScaleDataset builds the all-real n × f training set of the sweep: a
// shared per-sample latent factor plus feature noise, fully observed so every
// term is masked-eligible.
func trainScaleDataset(n, f int, seed uint64) *dataset.Dataset {
	schema := make(dataset.Schema, f)
	for j := range schema {
		schema[j] = dataset.Feature{Name: "g", Kind: dataset.Real}
	}
	d := dataset.New("train-scale", schema, n)
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		base := src.Normal(0, 1)
		row := d.Sample(i)
		for j := range row {
			row[j] = base + src.Normal(0, 0.5)
		}
	}
	return d
}

// TrainScale regenerates the train-scale exhibit: full-FRaC training swept
// across feature counts through both training paths, reporting the
// masked-over-gather time and memory fractions per point. Both paths produce
// bit-identical models (the design cache's exact-order contract), so only
// cost differs; the gap must widen with f.
func TrainScale(o Options) ([]TrainScaleRow, error) {
	ctx := o.ctx()
	points := TrainScalePoints(o)
	rows := make([]TrainScaleRow, 0, 2*len(points))
	w := o.out()
	fprintf(w, "Train-scale sweep: full-FRaC training, n=%d, masked design cache vs per-term gather\n", trainScaleSamples)
	fprintf(w, "%8s  %12s  %12s  %10s  %8s\n", "f", "masked", "gather", "peak frac", "speedup")
	for _, f := range points {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		train := trainScaleDataset(trainScaleSamples, f, o.Seed^0x7a11)
		terms := core.FullTerms(f)
		var cell [2]resource.Cost
		for pi, masked := range []bool{true, false} {
			o.Obs.Annotate("cell", fmt.Sprintf("train_scale/f=%d/masked=%t", f, masked))
			tracker := resource.NewTracker()
			cfg := core.Config{
				Workers: o.Workers,
				Seed:    o.Seed ^ 0xfeed,
				Tracker: tracker,
				Obs:     o.Obs,
				// The learners Table II–V use on expression profiles, so the
				// sweep measures the path real runs take.
				Learners:           core.MixedLearners(svm.SVRParams{C: 0.01}, tree.Params{}),
				DisableMaskedTrain: !masked,
			}
			maskedBefore := o.Obs.Count(obs.CounterTermsMasked)
			model, err := core.TrainCtx(ctx, train, terms, cfg)
			if err != nil {
				return rows, err
			}
			if model.NumTerms() != f {
				return rows, fmt.Errorf("train-scale f=%d: trained %d terms", f, model.NumTerms())
			}
			if o.Obs.Enabled() {
				delta := o.Obs.Count(obs.CounterTermsMasked) - maskedBefore
				if masked && delta == 0 {
					return rows, fmt.Errorf("train-scale f=%d: masked path did not engage", f)
				}
				if !masked && delta != 0 {
					return rows, fmt.Errorf("train-scale f=%d: gather cell trained %d masked terms", f, delta)
				}
			}
			cell[pi] = tracker.Stop()
			rows = append(rows, TrainScaleRow{Features: f, Masked: masked, Cost: cell[pi]})
		}
		timeFrac, memFrac := cell[0].Frac(cell[1])
		speedup := 0.0
		if timeFrac > 0 {
			speedup = 1 / timeFrac
		}
		fprintf(w, "%8d  %12v  %12v  %10.3f  %7.2fx\n",
			f, cell[0].Wall.Round(time.Millisecond), cell[1].Wall.Round(time.Millisecond), memFrac, speedup)
	}
	return rows, nil
}
