package eval

import (
	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/rng"
	"frac/internal/stats"
	"frac/internal/synth"
)

// InterpretationResult is the §IV-style analysis of a random-filtered run
// on the schizophrenia construction: how many ground-truth differentiated
// sites appear among the top-k influential features, and the chance
// probability of that enrichment.
type InterpretationResult struct {
	TopK          int
	Hits          int
	PValue        float64
	PoolSize      int
	KnownRelevant int
	AUC           float64
}

// Interpretation reproduces the paper's §IV finding that the top predictive
// models of a random schizophrenia run point at genuinely differentiated
// loci (the paper found 2 known schizophrenia genes in its top 20,
// hypergeometric p ≈ 0.011 as computed there). Ground truth here is the
// generator's drifted-site list.
func Interpretation(o Options) (InterpretationResult, error) {
	o = o.WithDefaults()
	p, err := synth.ProfileByName("schizophrenia")
	if err != nil {
		return InterpretationResult{}, err
	}
	// Rebuild the split with ground truth exposed.
	f := p.ScaledFeatures(o.Scale)
	params, err := p.SNPParamsFor(f)
	if err != nil {
		return InterpretationResult{}, err
	}
	train, test, truth, err := synth.GenerateConfoundedSNPWithTruth(p.Name, params, p.TestNormals,
		rng.New(o.Seed).Stream("profile-"+p.Name))
	if err != nil {
		return InterpretationResult{}, err
	}
	rep, err := dataset.FixedSplit(train, test)
	if err != nil {
		return InterpretationResult{}, err
	}
	cfg := configFor(p, o, nil)
	res, _, err := core.RunFullFilteredCtx(o.ctx(), rep.Train, rep.Test, core.RandomFilter, o.FilterP,
		rng.New(o.Seed).Stream("interpret"), cfg)
	if err != nil {
		return InterpretationResult{}, err
	}
	const topK = 20
	top, err := core.TopInfluential(res, rep.Test.Anomalous, topK)
	if err != nil {
		return InterpretationResult{}, err
	}
	known := map[int]bool{}
	for _, s := range truth.DriftedSites {
		known[s] = true
	}
	hits, pv := core.Enrichment(top, known, f)
	out := InterpretationResult{
		TopK: topK, Hits: hits, PValue: pv,
		PoolSize: f, KnownRelevant: len(known),
		AUC: stats.AUC(res.Scores, rep.Test.Anomalous),
	}
	w := o.out()
	fprintf(w, "\nInterpretation (paper §IV) — random-filtered schizophrenia run\n")
	fprintf(w, "AUC %.3f; %d of the top-%d influential SNP models are ground-truth\n", out.AUC, out.Hits, out.TopK)
	fprintf(w, "differentiated sites (%d of %d in the pool); hypergeometric p = %.4g\n",
		out.KnownRelevant, out.PoolSize, out.PValue)
	return out, nil
}
