package eval

import (
	"context"
	"fmt"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/encode"
	"frac/internal/linalg"
	"frac/internal/lof"
	"frac/internal/rng"
	"frac/internal/stats"
	"frac/internal/svm"
	"frac/internal/synth"
)

// BaselineRow is one (data set, detector) AUC.
type BaselineRow struct {
	Dataset, Method string
	AUC, AUCSD      float64
}

// Baselines compares the paper's context claim — FRaC is more robust to
// irrelevant variables than Local Outlier Factor (ref 5) and the one-class
// SVM (ref 6) — on the expression compendium. Both baselines operate on the
// 1-hot encoded sample vectors; the FRaC column is the random filter
// ensemble (the paper's recommended scalable configuration).
func Baselines(o Options) ([]BaselineRow, error) {
	o = o.WithDefaults()
	var rows []BaselineRow
	for _, p := range synth.Compendium() {
		if p.SNP {
			continue // the paper's baseline comparisons are on expression data
		}
		reps, err := replicatesFor(p, o)
		if err != nil {
			return nil, err
		}
		var fracAgg, lofAgg, ocAgg stats.Welford
		for ri, rep := range reps {
			// FRaC (random filter ensemble).
			auc, _, err := runScored(o.ctx(), p, o, rep, func(ctx context.Context, cfg core.Config) ([]float64, error) {
				return core.RunFilterEnsembleCtx(ctx, rep.Train, rep.Test, core.RandomFilter, o.FilterP,
					core.EnsembleSpec{Members: o.EnsembleMembers},
					newSeededStream(o, p.Name, "baseline-frac", ri), cfg)
			})
			if err != nil {
				return nil, fmt.Errorf("baselines frac on %s: %w", p.Name, err)
			}
			fracAgg.Add(auc)

			trainX, testX := encodedSplits(rep)

			// LOF with the conventional k = 10 (clamped for tiny sets).
			m := lof.Fit(trainX, 10)
			lofAgg.Add(stats.AUC(m.Scores(testX), rep.Test.Anomalous))

			// One-class SVM, RBF median-heuristic kernel, nu = 0.1.
			oc := svm.TrainOneClass(trainX, svm.OneClassParams{Nu: 0.1})
			scores := make([]float64, testX.Rows)
			for i := 0; i < testX.Rows; i++ {
				scores[i] = oc.AnomalyScore(testX.Row(i))
			}
			ocAgg.Add(stats.AUC(scores, rep.Test.Anomalous))
		}
		rows = append(rows,
			BaselineRow{Dataset: p.Name, Method: "frac-filter-ensemble", AUC: fracAgg.Mean(), AUCSD: fracAgg.StdDev()},
			BaselineRow{Dataset: p.Name, Method: "lof", AUC: lofAgg.Mean(), AUCSD: lofAgg.StdDev()},
			BaselineRow{Dataset: p.Name, Method: "one-class-svm", AUC: ocAgg.Mean(), AUCSD: ocAgg.StdDev()},
		)
	}
	printBaselines(o, rows)
	return rows, nil
}

// encodedSplits 1-hot encodes a replicate for the vector-space baselines.
func encodedSplits(rep dataset.Replicate) (train, test *linalg.Matrix) {
	enc := encode.Fit(rep.Train)
	return enc.EncodeDataset(rep.Train), enc.EncodeDataset(rep.Test)
}

// newSeededStream derives an independent RNG stream from run parts.
func newSeededStream(o Options, parts ...any) *rng.Source {
	label := ""
	for _, p := range parts {
		label += fmt.Sprint(p, "/")
	}
	return rng.New(o.Seed).Stream(label)
}

func printBaselines(o Options, rows []BaselineRow) {
	w := o.out()
	fprintf(w, "\nBaselines — FRaC filter-ensemble vs LOF vs one-class SVM (AUC, sd)\n")
	fprintf(w, "%-15s %-24s %12s\n", "data set", "method", "AUC (sd)")
	for _, r := range rows {
		fprintf(w, "%-15s %-24s %6.3f (%.3f)\n", r.Dataset, r.Method, r.AUC, r.AUCSD)
	}
}
