package eval

import (
	"context"
	"errors"
	"math"
	"testing"

	"frac/internal/synth"
)

// TestRunVariantsDeterministicAcrossSweepParallel: the variant-sweep grid
// must report bit-identical AUC statistics whether cells run sequentially or
// concurrently — cell randomness derives from (seed, profile, variant,
// replicate) and aggregation walks the grid in index order. Only the
// measured time/memory fractions may differ between runs.
func TestRunVariantsDeterministicAcrossSweepParallel(t *testing.T) {
	p, err := synth.ProfileByName("biomarkers")
	if err != nil {
		t.Fatal(err)
	}
	o := coarse()
	full, err := fullRunRow(p, o)
	if err != nil {
		t.Fatal(err)
	}
	specs := []VariantSpec{RandomFilterEnsembleSpec(), JLSpecVariant(), DiverseSpec()}
	run := func(par int) []VariantRow {
		t.Helper()
		o := o
		o.SweepParallel = par
		rows, err := RunVariants(p, full, specs, o)
		if err != nil {
			t.Fatalf("SweepParallel=%d: %v", par, err)
		}
		return rows
	}
	ref := run(1)
	for _, par := range []int{2, 4} {
		got := run(par)
		if len(got) != len(ref) {
			t.Fatalf("SweepParallel=%d: %d rows, want %d", par, len(got), len(ref))
		}
		for i := range got {
			if got[i].Variant != ref[i].Variant {
				t.Fatalf("row %d variant %q, want %q", i, got[i].Variant, ref[i].Variant)
			}
			for _, c := range []struct {
				name     string
				got, ref float64
			}{
				{"AUCFrac", got[i].AUCFrac, ref[i].AUCFrac},
				{"AUCFracSD", got[i].AUCFracSD, ref[i].AUCFracSD},
				{"RawAUC", got[i].RawAUC, ref[i].RawAUC},
				{"RawAUCSD", got[i].RawAUCSD, ref[i].RawAUCSD},
			} {
				if math.Float64bits(c.got) != math.Float64bits(c.ref) {
					t.Errorf("SweepParallel=%d %s.%s = %v (bits %016x), want %v (bits %016x)",
						par, got[i].Variant, c.name, c.got, math.Float64bits(c.got),
						c.ref, math.Float64bits(c.ref))
				}
			}
		}
	}
}

// TestRunVariantsHonorsCancellation: a pre-cancelled context aborts the
// sweep with context.Canceled before any cell output is produced.
func TestRunVariantsHonorsCancellation(t *testing.T) {
	p, err := synth.ProfileByName("biomarkers")
	if err != nil {
		t.Fatal(err)
	}
	o := coarse()
	full, err := fullRunRow(p, o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o.Ctx = ctx
	o.SweepParallel = 2
	if _, err := RunVariants(p, full, []VariantSpec{DiverseSpec()}, o); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
