// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Tables I–V, Figs. 1–3) over the
// synthetic compendium, at a configurable feature scale.
//
// Scale semantics: feature counts are the paper's divided by Options.Scale
// (sample counts are kept at the paper's values — they drive AUC
// reliability and are small). Derived quantities scale consistently: the JL
// dimension 1024 becomes 1024/Scale, etc. Absolute times shrink
// accordingly, but the *fractions of the full run* that Tables III–V report
// are scale-free to first order, which is what the reproduction checks.
package eval

import (
	"context"
	"fmt"
	"io"
	"time"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/jl"
	"frac/internal/obs"
	"frac/internal/resource"
	"frac/internal/rng"
	"frac/internal/stats"
	"frac/internal/svm"
	"frac/internal/synth"
	"frac/internal/tree"
)

// Options configures a harness run.
type Options struct {
	// Ctx cancels a harness run cooperatively: when it is done, in-flight
	// table cells finish and the run returns ctx.Err(). Nil means Background.
	Ctx context.Context
	// Scale divides the paper's feature counts. Default 16.
	Scale int
	// Replicates per data set (the paper uses 5). Default 5.
	Replicates int
	// Seed roots all randomness.
	Seed uint64
	// Workers bounds model-training parallelism (<= 0: GOMAXPROCS).
	Workers int
	// SweepParallel bounds how many variant-sweep cells (one variant on one
	// replicate) run concurrently. Default 1 (sequential, the paper-faithful
	// measurement mode). Concurrent cells share one bounded compute pool
	// sized by Workers, and cell outputs aggregate in deterministic index
	// order, so AUC columns are identical for every SweepParallel value;
	// only wall-clock changes. Cost fractions stay meaningful because they
	// are computed from summed CPU time and analytic peak bytes, not wall
	// time.
	SweepParallel int

	// FilterP is the full-filtering keep fraction (paper: 0.05).
	FilterP float64
	// EnsembleMembers is the filter/diverse ensemble size (paper: 10).
	EnsembleMembers int
	// DiverseP is the single-run diverse inclusion probability (paper: 1/2).
	DiverseP float64
	// DiverseEnsembleP is the per-member diverse probability (paper: 1/20).
	DiverseEnsembleP float64
	// JLDim is the expression-data projection dimension *at paper scale*
	// (paper: 1024); the harness divides by Scale.
	JLDim int
	// JLFamily selects the projection distribution (default Gaussian).
	JLFamily jl.Family

	// JLRepeats is the number of independent projections per JL data point
	// on the schizophrenia exhibits (paper: 10).
	JLRepeats int

	// Out receives the rendered tables. Nil discards.
	Out io.Writer

	// Obs, when non-nil, collects harness telemetry: phase spans, term
	// counters, pool occupancy, and progress accounting across every cell of
	// every exhibit. Telemetry only observes, so all table values are
	// identical with and without it.
	Obs *obs.Recorder
}

// WithDefaults fills unset fields with the paper's settings.
func (o Options) WithDefaults() Options {
	if o.Scale < 1 {
		o.Scale = 16
	}
	if o.Replicates < 1 {
		o.Replicates = 5
	}
	if o.FilterP <= 0 {
		o.FilterP = 0.05
	}
	if o.EnsembleMembers < 1 {
		o.EnsembleMembers = 10
	}
	if o.DiverseP <= 0 {
		o.DiverseP = 0.5
	}
	if o.DiverseEnsembleP <= 0 {
		o.DiverseEnsembleP = 1.0 / 20
	}
	if o.JLDim <= 0 {
		o.JLDim = 1024
	}
	if o.JLRepeats < 1 {
		o.JLRepeats = 10
	}
	return o
}

// ScaledJLDim returns the projection dimension after feature scaling,
// floored at 8.
func (o Options) ScaledJLDim(paperDim int) int {
	d := paperDim / o.Scale
	if d < 8 {
		d = 8
	}
	return d
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// ctx returns the run's context, defaulting to Background.
func (o Options) ctx() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// sweepParallel resolves the cell-level concurrency (>= 1).
func (o Options) sweepParallel() int {
	if o.SweepParallel < 1 {
		return 1
	}
	return o.SweepParallel
}

// configFor returns the engine config for a profile: the paper's learner
// choice (linear SVR on expression data, decision trees on SNP data).
func configFor(p synth.Profile, o Options, tracker *resource.Tracker) core.Config {
	cfg := core.Config{
		Workers: o.Workers,
		Seed:    o.Seed ^ 0xfeed,
		Tracker: tracker,
		Obs:     o.Obs,
	}
	if p.SNP {
		cfg.Learners = core.TreeLearners(tree.Params{})
	} else {
		// C = 0.01 on standardized features: the n << d regime of these
		// data sets needs strong regularization for the SVR to generalize
		// (the core learner standardizes, so C is comparable across raw
		// and JL-projected spaces).
		cfg.Learners = core.MixedLearners(svm.SVRParams{C: 0.01}, tree.Params{})
	}
	return cfg
}

// replicatesFor generates a profile's sample pool and its train/test
// replicates. Generation counts as the load phase for telemetry — it is the
// harness's equivalent of reading a data set off disk.
func replicatesFor(p synth.Profile, o Options) ([]dataset.Replicate, error) {
	span := o.Obs.Start(obs.PhaseLoad)
	defer span.End()
	if p.Confounded {
		train, test, err := p.GenerateSplit(o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		rep, err := dataset.FixedSplit(train, test)
		if err != nil {
			return nil, err
		}
		return []dataset.Replicate{rep}, nil
	}
	pool, err := p.Generate(o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	return dataset.MakeReplicates(pool, o.Replicates, 2.0/3, rng.New(o.Seed).Stream("splits-"+p.Name))
}

// runScored executes fn under a fresh tracker and returns the resulting
// anomaly-score AUC and cost. fn receives the run context and the
// tracker-carrying config.
func runScored(ctx context.Context, p synth.Profile, o Options, rep dataset.Replicate,
	fn func(ctx context.Context, cfg core.Config) ([]float64, error)) (auc float64, cost resource.Cost, err error) {
	tracker := resource.NewTracker()
	cfg := configFor(p, o, tracker)
	scores, err := fn(ctx, cfg)
	if err != nil {
		return 0, resource.Cost{}, err
	}
	cost = tracker.Stop()
	o.Obs.SetAnalytic(cost.PeakBytes, cost.FinalBytes)
	if err := core.SanityCheckScores(scores); err != nil {
		return 0, cost, err
	}
	return stats.AUC(scores, rep.Test.Anomalous), cost, nil
}

// meanCost averages durations and peaks over costs.
func meanCost(costs []resource.Cost) resource.Cost {
	if len(costs) == 0 {
		return resource.Cost{}
	}
	var out resource.Cost
	var peakSum int64
	for _, c := range costs {
		out.Wall += c.Wall
		out.CPU += c.CPU
		peakSum += c.PeakBytes
	}
	n := time.Duration(len(costs))
	out.Wall /= n
	out.CPU /= n
	out.PeakBytes = peakSum / int64(len(costs))
	return out
}

// fullTermsRun is the Table II primitive: ordinary FRaC over all features.
func fullTermsRun(rep dataset.Replicate) func(ctx context.Context, cfg core.Config) ([]float64, error) {
	return func(ctx context.Context, cfg core.Config) ([]float64, error) {
		res, err := core.RunCtx(ctx, rep.Train, rep.Test, core.FullTerms(rep.Train.NumFeatures()), cfg)
		if err != nil {
			return nil, err
		}
		return res.Scores, nil
	}
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
