package eval

import (
	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/encode"
	"frac/internal/jl"
	"frac/internal/rng"
)

// Fig1 renders the paper's Fig. 1 schematic as wiring matrices over an
// eight-feature example: which features each variant's predictors consider.
// Rows are predictors (labelled by target), columns are features; '#' marks
// "considered", '.' marks "ignored".
func Fig1(o Options) map[string][][]bool {
	o = o.WithDefaults()
	const f = 8
	src := rng.New(o.Seed).Stream("fig1")
	kept := src.Stream("filter").SampleK(f, 4)

	wirings := map[string][][]bool{
		"full":           core.WiringMatrix(core.FullTerms(f), f),
		"full-filter":    filteredWiring(kept, f),
		"partial-filter": core.WiringMatrix(core.PartialTerms(kept, f), f),
		"diverse":        core.WiringMatrix(core.DiverseTerms(f, 0.5, 1, src.Stream("diverse")), f),
	}
	w := o.out()
	fprintf(w, "Fig. 1 — variant wiring over %d features ('#': predictor considers feature)\n", f)
	for _, name := range []string{"full", "full-filter", "partial-filter", "diverse"} {
		fprintf(w, "\n%s:\n", name)
		for ti, row := range wirings[name] {
			fprintf(w, "  p%-2d ", ti)
			for _, on := range row {
				if on {
					fprintf(w, "#")
				} else {
					fprintf(w, ".")
				}
			}
			fprintf(w, "\n")
		}
	}
	return wirings
}

// filteredWiring expands a full-filter wiring back into original feature
// coordinates for display.
func filteredWiring(kept []int, f int) [][]bool {
	terms := core.FilteredTerms(kept)
	out := make([][]bool, len(terms))
	for ti, t := range terms {
		row := make([]bool, f)
		for _, in := range t.Inputs {
			row[kept[in]] = true // map working index back to original
		}
		out[ti] = row
	}
	return out
}

// Fig2Result carries the stages of the paper's Fig. 2 preprocessing
// illustration.
type Fig2Result struct {
	Sample    []float64
	OneHot    []float64
	Projected []float64
}

// Fig2 reproduces the paper's literal Fig. 2 example: a sample with four
// real features and two categorical features ({0,1,2} and {0,1,2,3}) is
// 1-hot encoded to 11 dimensions and JL-projected to 4.
func Fig2(o Options) (Fig2Result, error) {
	o = o.WithDefaults()
	schema := dataset.Schema{
		{Name: "r0", Kind: dataset.Real},
		{Name: "r1", Kind: dataset.Real},
		{Name: "r2", Kind: dataset.Real},
		{Name: "r3", Kind: dataset.Real},
		{Name: "c0", Kind: dataset.Categorical, Arity: 3},
		{Name: "c1", Kind: dataset.Categorical, Arity: 4},
	}
	d := dataset.New("fig2", schema, 1)
	sample := []float64{3.4, 0, -2, 0.6, 1, 2}
	copy(d.Sample(0), sample)
	if err := d.Validate(); err != nil {
		return Fig2Result{}, err
	}
	enc := encode.Fit(d)
	hot := enc.Encode(d.Sample(0), nil)
	t := jl.New(4, enc.Width(), o.JLFamily, rng.New(o.Seed).Stream("fig2"))
	proj := t.Apply(hot, nil)

	w := o.out()
	fprintf(w, "Fig. 2 — 1-hot transform, concatenation, JL projection\n")
	fprintf(w, "data:      %v\n", sample)
	fprintf(w, "1-hot:     %v  (width %d)\n", hot, enc.Width())
	fprintf(w, "JL (4-d):  [")
	for i, v := range proj {
		if i > 0 {
			fprintf(w, ", ")
		}
		fprintf(w, "%.2f", v)
	}
	fprintf(w, "]\n")
	return Fig2Result{Sample: sample, OneHot: hot, Projected: proj}, nil
}
