package eval

import (
	"context"
	"fmt"
	"time"

	"frac/internal/core"
	"frac/internal/dataset"
	"frac/internal/parallel"
	"frac/internal/resource"
	"frac/internal/rng"
	"frac/internal/stats"
	"frac/internal/synth"
)

// Table1Row is one line of Table I: data-set inventory.
type Table1Row struct {
	Dataset                   string
	Features, Normal, Anomaly int
	PaperFeatures             int
	Kind                      string // "expression" / "SNP"
}

// Table1 reports the compendium inventory at the harness scale.
func Table1(o Options) []Table1Row {
	o = o.WithDefaults()
	var rows []Table1Row
	for _, p := range synth.Compendium() {
		kind := "expression"
		if p.SNP {
			kind = "SNP"
		}
		rows = append(rows, Table1Row{
			Dataset:       p.Name,
			Features:      p.ScaledFeatures(o.Scale),
			Normal:        p.PaperNormal,
			Anomaly:       p.PaperAnomaly,
			PaperFeatures: p.PaperFeatures,
			Kind:          kind,
		})
	}
	w := o.out()
	fprintf(w, "Table I — data sets (features scaled 1:%d; paper feature counts in parens)\n", o.Scale)
	fprintf(w, "%-15s %10s %18s %8s %8s\n", "data set", "kind", "features", "normal", "anomaly")
	for _, r := range rows {
		fprintf(w, "%-15s %10s %8d (%6d) %8d %8d\n", r.Dataset, r.Kind, r.Features, r.PaperFeatures, r.Normal, r.Anomaly)
	}
	return rows
}

// Table2Row is one line of Table II: full-FRaC reference runs.
type Table2Row struct {
	Dataset      string
	AUC, AUCSD   float64
	Cost         resource.Cost
	PaperAUC     float64
	PaperAUCSD   float64
	Extrapolated bool
	// PerReplicate keeps the raw AUC/cost pairs for fraction computation.
	PerReplicate []ReplicateOutcome
}

// ReplicateOutcome is one replicate's full-run result.
type ReplicateOutcome struct {
	AUC  float64
	Cost resource.Cost
}

// Table2 runs full FRaC on every non-confounded profile (5 replicates) and
// extrapolates the schizophrenia row from the autism row, exactly as the
// paper does ("time and memory performance for this data set were estimated
// by extrapolation from the performance on the autism data").
func Table2(o Options) ([]Table2Row, error) {
	o = o.WithDefaults()
	var rows []Table2Row
	var autismRow *Table2Row
	for _, p := range synth.Compendium() {
		if p.Confounded {
			continue
		}
		row, err := fullRunRow(p, o)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", p.Name, err)
		}
		rows = append(rows, row)
		if p.Name == "autism" {
			autismRow = &rows[len(rows)-1]
		}
	}
	// Extrapolated schizophrenia row: CPU time scales with the per-model
	// work f * (models trained) ~ f^2 times the sample count; the retained
	// model store scales with f^2 (tree node counts are sample-bounded, so
	// memory scales with model count f times per-model size).
	schiz, err := synth.ProfileByName("schizophrenia")
	if err != nil {
		return nil, err
	}
	if autismRow == nil {
		return nil, fmt.Errorf("table2: autism row missing for extrapolation")
	}
	autism, _ := synth.ProfileByName("autism")
	fRatio := float64(schiz.ScaledFeatures(o.Scale)) / float64(autism.ScaledFeatures(o.Scale))
	// Training-set size ratio: autism trains on 2/3 of its normals;
	// schizophrenia trains on its fixed HapMap-style split.
	nRatio := float64(schiz.PaperNormal-schiz.TestNormals) / (float64(autism.PaperNormal) * 2.0 / 3)
	ext := Table2Row{
		Dataset:      "schizophrenia",
		AUC:          -1,
		Cost:         extrapolateCost(autismRow.Cost, fRatio, nRatio),
		PaperAUC:     -1,
		Extrapolated: true,
	}
	rows = append(rows, ext)
	printTable2(o, rows)
	return rows, nil
}

// extrapolateCost scales a measured cost to a larger problem: CPU
// quadratically in features and linearly in training samples; memory
// quadratically in features.
func extrapolateCost(base resource.Cost, fRatio, nRatio float64) resource.Cost {
	return resource.Cost{
		Wall:      scaleDur(base.Wall, fRatio*fRatio*nRatio),
		CPU:       scaleDur(base.CPU, fRatio*fRatio*nRatio),
		PeakBytes: int64(float64(base.PeakBytes) * fRatio * fRatio),
	}
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

func fullRunRow(p synth.Profile, o Options) (Table2Row, error) {
	reps, err := replicatesFor(p, o)
	if err != nil {
		return Table2Row{}, err
	}
	row := Table2Row{Dataset: p.Name, PaperAUC: p.PaperAUC, PaperAUCSD: p.PaperAUCSD}
	var aucAgg stats.Welford
	var costs []resource.Cost
	for i, rep := range reps {
		o.Obs.Annotate("cell", fmt.Sprintf("%s/full/rep%d", p.Name, i))
		auc, cost, err := runScored(o.ctx(), p, o, rep, fullTermsRun(rep))
		if err != nil {
			return Table2Row{}, err
		}
		aucAgg.Add(auc)
		costs = append(costs, cost)
		row.PerReplicate = append(row.PerReplicate, ReplicateOutcome{AUC: auc, Cost: cost})
	}
	row.AUC = aucAgg.Mean()
	row.AUCSD = aucAgg.StdDev()
	row.Cost = meanCost(costs)
	return row, nil
}

func printTable2(o Options, rows []Table2Row) {
	w := o.out()
	fprintf(w, "\nTable II — full FRaC runs (paper AUC in parens; schizophrenia extrapolated)\n")
	fprintf(w, "%-15s %14s %12s %12s %12s\n", "data set", "AUC (sd)", "paper AUC", "CPU", "Mem")
	for _, r := range rows {
		aucStr, paperStr := "N/A", "N/A"
		if r.AUC >= 0 {
			aucStr = fmt.Sprintf("%.2f (%.2f)", r.AUC, r.AUCSD)
		}
		if r.PaperAUC >= 0 {
			paperStr = fmt.Sprintf("%.2f (%.2f)", r.PaperAUC, r.PaperAUCSD)
		}
		mark := ""
		if r.Extrapolated {
			mark = "*"
		}
		fprintf(w, "%-15s %14s %12s %12v %12s%s\n", r.Dataset, aucStr, paperStr,
			r.Cost.CPU.Round(time.Millisecond), resource.FormatBytes(r.Cost.PeakBytes), mark)
	}
}

// VariantRow is one (data set, variant) cell group of Tables III/IV: AUC,
// time, and memory as fractions of the full run.
type VariantRow struct {
	Dataset, Variant   string
	AUCFrac, AUCFracSD float64
	TimeFrac, MemFrac  float64
	RawAUC, RawAUCSD   float64
}

// VariantSpec names a scalable-FRaC variant and how to run it on one
// replicate. The seed source is independent per (variant, replicate).
type VariantSpec struct {
	Name string
	Run  func(ctx context.Context, rep dataset.Replicate, src *rng.Source, cfg core.Config, o Options) ([]float64, error)
}

// RunVariants executes the given variants over a profile's replicates,
// reporting fractions against the profile's full-run outcomes from Table II.
//
// The (variant, replicate) cells form a flat grid that runs on up to
// Options.SweepParallel supervisor goroutines sharing one bounded compute
// pool (Options.Workers wide), so concurrent cells never oversubscribe the
// machine. Each cell's randomness derives from (o.Seed, profile, variant,
// replicate) alone and each outcome lands in its own slot; aggregation then
// walks the grid in index order, so every statistic except measured time is
// identical for any SweepParallel value.
func RunVariants(p synth.Profile, full Table2Row, specs []VariantSpec, o Options) ([]VariantRow, error) {
	o = o.WithDefaults()
	reps, err := replicatesFor(p, o)
	if err != nil {
		return nil, err
	}
	type cellOut struct {
		auc  float64
		cost resource.Cost
	}
	cells := make([]cellOut, len(specs)*len(reps))
	par := o.sweepParallel()
	var limit *parallel.Limit
	if par > 1 && len(cells) > 1 {
		// Concurrent cells share one term-level compute pool so total
		// parallelism stays at Workers, not cells x Workers.
		limit = parallel.NewLimit(o.Workers).Instrument(o.Obs)
	}
	err = parallel.ForWorkersErr(o.ctx(), len(cells), par, func(ci int) error {
		si, ri := ci/len(reps), ci%len(reps)
		spec, rep := specs[si], reps[ri]
		// Journal annotation: label the sweep cell so interleaved spans from
		// concurrent cells are attributable after the fact.
		o.Obs.Annotate("cell", fmt.Sprintf("%s/%s/rep%d", p.Name, spec.Name, ri))
		src := rng.New(o.Seed).Stream(fmt.Sprintf("%s-%s-r%d", p.Name, spec.Name, ri))
		auc, cost, err := runScored(o.ctx(), p, o, rep, func(ctx context.Context, cfg core.Config) ([]float64, error) {
			cfg.Limit = limit
			return spec.Run(ctx, rep, src, cfg, o)
		})
		if err != nil {
			return fmt.Errorf("%s on %s replicate %d: %w", spec.Name, p.Name, ri, err)
		}
		cells[ci] = cellOut{auc: auc, cost: cost}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []VariantRow
	for si, spec := range specs {
		var fracAgg, rawAgg stats.Welford
		var timeFracs, memFracs []float64
		for ri := range reps {
			cell := cells[si*len(reps)+ri]
			rawAgg.Add(cell.auc)
			baseline := full.Cost
			baseAUC := full.AUC
			if ri < len(full.PerReplicate) {
				baseline = full.PerReplicate[ri].Cost
				baseAUC = full.PerReplicate[ri].AUC
			}
			if baseAUC > 0 {
				fracAgg.Add(cell.auc / baseAUC)
			}
			tf, mf := cell.cost.Frac(baseline)
			timeFracs = append(timeFracs, tf)
			memFracs = append(memFracs, mf)
		}
		rows = append(rows, VariantRow{
			Dataset: p.Name, Variant: spec.Name,
			AUCFrac: fracAgg.Mean(), AUCFracSD: fracAgg.StdDev(),
			RawAUC: rawAgg.Mean(), RawAUCSD: rawAgg.StdDev(),
			TimeFrac: stats.Mean(timeFracs), MemFrac: stats.Mean(memFracs),
		})
	}
	return rows, nil
}
