package eval

import (
	"bytes"
	"strings"
	"testing"

	"frac/internal/synth"
)

// coarse returns options small/fast enough for unit tests: tiny feature
// scale, few replicates.
func coarse() Options {
	return Options{
		Scale:      256,
		Replicates: 2,
		Seed:       1,
		JLRepeats:  2,
	}.WithDefaults()
}

func TestTable1Inventory(t *testing.T) {
	var buf bytes.Buffer
	o := coarse()
	o.Out = &buf
	rows := Table1(o)
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Dataset] = r
	}
	bb := byName["breast.basal"]
	if bb.PaperFeatures != 3167 || bb.Normal != 56 || bb.Anomaly != 19 {
		t.Errorf("breast.basal row = %+v", bb)
	}
	if bb.Features != 3167/256 {
		t.Errorf("scaled features = %d", bb.Features)
	}
	if byName["autism"].Kind != "SNP" {
		t.Error("autism should be an SNP set")
	}
	if !strings.Contains(buf.String(), "breast.basal") {
		t.Error("table output missing rows")
	}
}

func TestTable2ProducesAllRowsAndExtrapolation(t *testing.T) {
	o := coarse()
	rows, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8 (incl. extrapolated schizophrenia)", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Dataset != "schizophrenia" || !last.Extrapolated {
		t.Errorf("last row = %+v, want extrapolated schizophrenia", last)
	}
	if last.Cost.CPU <= 0 || last.Cost.PeakBytes <= 0 {
		t.Error("extrapolated cost empty")
	}
	var autism Table2Row
	for _, r := range rows {
		if r.Dataset == "autism" {
			autism = r
		}
	}
	// Extrapolation must scale the autism cost up (more features, more
	// training samples).
	if last.Cost.CPU <= autism.Cost.CPU {
		t.Error("schizophrenia extrapolation should exceed autism cost")
	}
	for _, r := range rows[:len(rows)-1] {
		if r.AUC < 0.2 || r.AUC > 1 {
			t.Errorf("%s AUC = %v out of range", r.Dataset, r.AUC)
		}
		if len(r.PerReplicate) != o.Replicates {
			t.Errorf("%s has %d per-replicate outcomes", r.Dataset, len(r.PerReplicate))
		}
		if r.Cost.CPU <= 0 {
			t.Errorf("%s no CPU cost", r.Dataset)
		}
	}
}

func TestVariantFractionsAgainstFull(t *testing.T) {
	o := coarse()
	full, err := Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	fullByName := map[string]Table2Row{}
	for _, r := range full {
		fullByName[r.Dataset] = r
	}
	p := mustProfile(t, "breast.basal")
	rows, err := RunVariants(p, fullByName["breast.basal"],
		[]VariantSpec{SingleRandomFilterSpec()}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if r.TimeFrac <= 0 || r.TimeFrac >= 1 {
		t.Errorf("filtered time fraction = %v, want in (0,1)", r.TimeFrac)
	}
	if r.MemFrac <= 0 || r.MemFrac >= 1 {
		t.Errorf("filtered mem fraction = %v, want in (0,1)", r.MemFrac)
	}
	if r.AUCFrac <= 0 {
		t.Errorf("AUC fraction = %v", r.AUCFrac)
	}
}

func TestFig1WiringShapes(t *testing.T) {
	var buf bytes.Buffer
	o := coarse()
	o.Out = &buf
	w := Fig1(o)
	full := w["full"]
	if len(full) != 8 {
		t.Fatalf("full wiring has %d rows", len(full))
	}
	for i, row := range full {
		on := 0
		for j, b := range row {
			if b {
				on++
			}
			if j == i && b {
				t.Errorf("full wiring row %d considers itself", i)
			}
		}
		if on != 7 {
			t.Errorf("full row %d considers %d features", i, on)
		}
	}
	if len(w["full-filter"]) != 4 {
		t.Errorf("full-filter built %d predictors, want 4 (half kept)", len(w["full-filter"]))
	}
	if len(w["partial-filter"]) != 4 {
		t.Errorf("partial-filter built %d predictors", len(w["partial-filter"]))
	}
	for i, row := range w["partial-filter"] {
		on := 0
		for _, b := range row {
			if b {
				on++
			}
		}
		if on != 7 {
			t.Errorf("partial row %d considers %d features, want 7 (all others)", i, on)
		}
	}
	if !strings.Contains(buf.String(), "diverse") {
		t.Error("fig1 output missing variants")
	}
}

func TestFig2PaperExample(t *testing.T) {
	o := coarse()
	res, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OneHot) != 11 {
		t.Errorf("1-hot width = %d, want 11 (paper Fig. 2)", len(res.OneHot))
	}
	if len(res.Projected) != 4 {
		t.Errorf("projected dim = %d, want 4", len(res.Projected))
	}
	want := []float64{3.4, 0, -2, 0.6, 0, 1, 0, 0, 0, 1, 0}
	for i, v := range want {
		if res.OneHot[i] != v {
			t.Fatalf("one-hot = %v", res.OneHot)
		}
	}
}

func TestScaledJLDim(t *testing.T) {
	o := Options{Scale: 16}.WithDefaults()
	if d := o.ScaledJLDim(1024); d != 64 {
		t.Errorf("ScaledJLDim(1024) = %d, want 64", d)
	}
	if d := o.ScaledJLDim(64); d != 8 {
		t.Errorf("floor: %d, want 8", d)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.FilterP != 0.05 || o.EnsembleMembers != 10 || o.DiverseP != 0.5 {
		t.Errorf("paper defaults wrong: %+v", o)
	}
	if o.DiverseEnsembleP != 1.0/20 || o.JLDim != 1024 || o.JLRepeats != 10 {
		t.Errorf("paper defaults wrong: %+v", o)
	}
}

func mustProfile(t *testing.T, name string) synth.Profile {
	t.Helper()
	prof, err := synth.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestInterpretationEnrichment(t *testing.T) {
	o := coarse()
	o.FilterP = 0.25 // keep enough sites at the tiny test scale
	res, err := Interpretation(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits < 1 {
		t.Errorf("no ground-truth drifted sites in top-%d influential features", res.TopK)
	}
	if res.PValue <= 0 || res.PValue > 1 {
		t.Errorf("p = %v", res.PValue)
	}
	if res.AUC <= 0.5 {
		t.Errorf("interpretation run AUC = %v", res.AUC)
	}
}
