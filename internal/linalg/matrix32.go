package linalg

// Matrix32 is a dense row-major matrix of float32 values — the storage type
// of the opt-in float32 design cache (Config.Float32Design). Consumers read
// it through the mixed-precision kernels of vector32.go, which accumulate
// in float64.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewMatrix32 allocates a zeroed rows x cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panicBadDims("NewMatrix32", rows, cols)
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Resize32 returns a rows x cols matrix reusing m's backing array when it
// has the capacity (m may be nil). Contents are unspecified — callers must
// overwrite every cell. The float32 counterpart of Resize.
func Resize32(m *Matrix32, rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panicBadDims("Resize32", rows, cols)
	}
	n := rows * cols
	if m == nil {
		return NewMatrix32(rows, cols)
	}
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// Row returns row i as a mutable slice view.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Bytes reports the memory footprint of the matrix payload.
func (m *Matrix32) Bytes() int64 { return int64(len(m.Data)) * 4 }
