// Package linalg provides the dense linear-algebra kernels the FRaC
// reproduction is built on: float64 vectors and row-major matrices with the
// handful of BLAS-level operations the learners and the JL transform need.
// Hot loops are written so the compiler can eliminate bounds checks, and the
// matrix product is parallelized across rows.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y. It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// DotSkip returns the inner product of x and y over every index except
// skip, accumulating in ascending index order. The exact-FP-order contract:
// the result is bit-identical to gathering the non-skip elements of both
// vectors into dense buffers and calling Dot, because the partial-sum chain
// visits the same values in the same order (DESIGN.md §10). skip must be in
// [0, len(x)); the kernels panic otherwise so a masked-training bug cannot
// silently fall back to a full product.
func DotSkip(x, y []float64, skip int) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: DotSkip length mismatch %d vs %d", len(x), len(y)))
	}
	if skip < 0 || skip >= len(x) {
		panic(fmt.Sprintf("linalg: DotSkip column %d out of [0,%d)", skip, len(x)))
	}
	var s float64
	for i, v := range x[:skip] {
		s += v * y[i]
	}
	for i := skip + 1; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// AxpySkip computes y[i] += a*x[i] for every index except skip, leaving
// y[skip] untouched. Element updates are independent, so this is bit-
// identical to gather-then-Axpy on the non-skip positions.
func AxpySkip(a float64, x, y []float64, skip int) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: AxpySkip length mismatch %d vs %d", len(x), len(y)))
	}
	if skip < 0 || skip >= len(x) {
		panic(fmt.Sprintf("linalg: AxpySkip column %d out of [0,%d)", skip, len(x)))
	}
	if a == 0 {
		return
	}
	for i, v := range x[:skip] {
		y[i] += a * v
	}
	for i := skip + 1; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// SqNormSkip returns the squared Euclidean norm of x over every index except
// skip, with the same ascending-order partial-sum chain as DotSkip(x, x,
// skip) — bit-identical to gathering then Dot(v, v).
func SqNormSkip(x []float64, skip int) float64 {
	if skip < 0 || skip >= len(x) {
		panic(fmt.Sprintf("linalg: SqNormSkip column %d out of [0,%d)", skip, len(x)))
	}
	var s float64
	for _, v := range x[:skip] {
		s += v * v
	}
	for i := skip + 1; i < len(x); i++ {
		v := x[i]
		s += v * v
	}
	return s
}

// Axpy computes y += a*x in place. It panics if the lengths differ.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	if a == 0 {
		return
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale computes x *= a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for the
// magnitudes seen in this codebase via a scaled accumulation.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SqDist returns the squared Euclidean distance between x and y.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// AddTo computes dst = x + y. dst may alias x or y.
func AddTo(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("linalg: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
