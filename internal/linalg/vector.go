// Package linalg provides the dense linear-algebra kernels the FRaC
// reproduction is built on: float64 vectors and row-major matrices with the
// handful of BLAS-level operations the learners and the JL transform need.
//
// The kernels are split into two tiers (DESIGN.md §12):
//
//   - The *exact-order tier* — Dot, Axpy, DotSkip, AxpySkip, SqNormSkip —
//     uses a frozen 4-wide unrolled accumulation order shared between the
//     dense and skip variants: lane assignment follows the LOGICAL (post-
//     gather) element index, so DotSkip(x, y, skip) stays bit-identical to
//     Dot on the gathered vectors. Masked SVR training depends on this
//     bit-identity (TestMaskedTrainingBitIdentical), so the order here is a
//     contract, not an implementation detail.
//
//   - The *fast reassociated tier* — DotFast, SqDist — is free to pick
//     whatever accumulation order is fastest and may change between
//     releases. Only call sites pinned by tolerance tests (matrix products,
//     kernel distances, LOF, the JL transform) may use it.
//
// Hot loops are written so the compiler can eliminate bounds checks
// (explicit `y = y[:n]` reslices), panics are hoisted into //go:noinline
// helpers so the wrappers stay inlinable, and the matrix product is
// parallelized across rows.
package linalg

import (
	"fmt"
	"math"
)

//go:noinline
func panicLenMismatch(op string, a, b int) {
	panic(fmt.Sprintf("linalg: %s length mismatch %d vs %d", op, a, b))
}

//go:noinline
func panicBadSkip(op string, skip, n int) {
	panic(fmt.Sprintf("linalg: %s column %d out of [0,%d)", op, skip, n))
}

// Dot returns the inner product of x and y. It panics if the lengths differ.
//
// Frozen accumulation order (exact tier): four independent lanes s0..s3 take
// elements 4k, 4k+1, 4k+2, 4k+3 of the first n-n%4 elements; the lanes
// combine as (s0+s1)+(s2+s3); the tail (< 4 elements) is then added
// sequentially in ascending index order. DotSkip reproduces this order over
// logical (gathered) indices, which is what makes masked training
// bit-identical to gather-then-train.
func Dot(x, y []float64) float64 {
	return dot4(x, y)
}

// dot4 is the outlined kernel behind Dot; validation lives here so the
// exported wrapper stays a single call and inlines.
func dot4(x, y []float64) float64 {
	if len(x) != len(y) {
		panicLenMismatch("Dot", len(x), len(y))
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n] // bounds-check elimination hint
	var s0, s1, s2, s3 float64
	g := n &^ 3
	for j := 0; j < g; j += 4 {
		s0 += x[j] * y[j]
		s1 += x[j+1] * y[j+1]
		s2 += x[j+2] * y[j+2]
		s3 += x[j+3] * y[j+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for j := g; j < n; j++ {
		s += x[j] * y[j]
	}
	return s
}

// DotSkip returns the inner product of x and y over every index except
// skip. The exact-FP-order contract: the result is bit-identical to
// gathering the non-skip elements of both vectors into dense buffers and
// calling Dot, because lanes are assigned by logical (gathered) index and
// combined in Dot's frozen order (DESIGN.md §12). skip must be in
// [0, len(x)); the kernels panic otherwise so a masked-training bug cannot
// silently fall back to a full product.
func DotSkip(x, y []float64, skip int) float64 {
	return dotSkip4(x, y, skip)
}

// dotSkip4 walks the n-1 logical elements in three segments — full 4-groups
// below skip (physical == logical), at most one group straddling skip, full
// 4-groups above skip (physical == logical+1) — so each lane sees exactly
// the elements Dot's lanes would see on the gathered vectors.
func dotSkip4(x, y []float64, skip int) float64 {
	if len(x) != len(y) {
		panicLenMismatch("DotSkip", len(x), len(y))
	}
	if skip < 0 || skip >= len(x) {
		panicBadSkip("DotSkip", skip, len(x))
	}
	n := len(x)
	y = y[:n]
	m := n - 1  // logical (gathered) length
	g := m &^ 3 // unrolled-group end over logical indices
	var s0, s1, s2, s3 float64
	j := 0
	// Segment 1: groups entirely below the skip column; physical == logical.
	for ; j+4 <= g && j+4 <= skip; j += 4 {
		s0 += x[j] * y[j]
		s1 += x[j+1] * y[j+1]
		s2 += x[j+2] * y[j+2]
		s3 += x[j+3] * y[j+3]
	}
	// Segment 2: at most one group straddling the skip column.
	if j+4 <= g && j < skip {
		p0, p1, p2, p3 := skipIdx(j, skip), skipIdx(j+1, skip), skipIdx(j+2, skip), skipIdx(j+3, skip)
		s0 += x[p0] * y[p0]
		s1 += x[p1] * y[p1]
		s2 += x[p2] * y[p2]
		s3 += x[p3] * y[p3]
		j += 4
	}
	// Segment 3: groups entirely above the skip column; physical == logical+1.
	for ; j+4 <= g; j += 4 {
		s0 += x[j+1] * y[j+1]
		s1 += x[j+2] * y[j+2]
		s2 += x[j+3] * y[j+3]
		s3 += x[j+4] * y[j+4]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; j < m; j++ {
		p := skipIdx(j, skip)
		s += x[p] * y[p]
	}
	return s
}

// skipIdx maps a logical (gathered) index to its physical index.
func skipIdx(j, skip int) int {
	if j < skip {
		return j
	}
	return j + 1
}

// AxpySkip computes y[i] += a*x[i] for every index except skip, leaving
// y[skip] untouched. Element updates are independent, so this is bit-
// identical to gather-then-Axpy on the non-skip positions regardless of
// unrolling; the kernel runs as two dense unrolled segments around skip.
func AxpySkip(a float64, x, y []float64, skip int) {
	axpySkip4(a, x, y, skip)
}

func axpySkip4(a float64, x, y []float64, skip int) {
	if len(x) != len(y) {
		panicLenMismatch("AxpySkip", len(x), len(y))
	}
	if skip < 0 || skip >= len(x) {
		panicBadSkip("AxpySkip", skip, len(x))
	}
	if a == 0 {
		return
	}
	axpy4(a, x[:skip], y[:skip])
	axpy4(a, x[skip+1:], y[skip+1:])
}

// SqNormSkip returns the squared Euclidean norm of x over every index except
// skip, with the same frozen lane order as DotSkip(x, x, skip) —
// bit-identical to gathering then Dot(v, v).
func SqNormSkip(x []float64, skip int) float64 {
	return sqNormSkip4(x, skip)
}

func sqNormSkip4(x []float64, skip int) float64 {
	if skip < 0 || skip >= len(x) {
		panicBadSkip("SqNormSkip", skip, len(x))
	}
	m := len(x) - 1
	g := m &^ 3
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= g && j+4 <= skip; j += 4 {
		s0 += x[j] * x[j]
		s1 += x[j+1] * x[j+1]
		s2 += x[j+2] * x[j+2]
		s3 += x[j+3] * x[j+3]
	}
	if j+4 <= g && j < skip {
		v0, v1, v2, v3 := x[skipIdx(j, skip)], x[skipIdx(j+1, skip)], x[skipIdx(j+2, skip)], x[skipIdx(j+3, skip)]
		s0 += v0 * v0
		s1 += v1 * v1
		s2 += v2 * v2
		s3 += v3 * v3
		j += 4
	}
	for ; j+4 <= g; j += 4 {
		s0 += x[j+1] * x[j+1]
		s1 += x[j+2] * x[j+2]
		s2 += x[j+3] * x[j+3]
		s3 += x[j+4] * x[j+4]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; j < m; j++ {
		v := x[skipIdx(j, skip)]
		s += v * v
	}
	return s
}

// Axpy computes y += a*x in place. It panics if the lengths differ. Element
// updates are independent, so the unrolled kernel is bit-identical to the
// one-element loop.
func Axpy(a float64, x, y []float64) {
	axpyChecked(a, x, y)
}

func axpyChecked(a float64, x, y []float64) {
	if len(x) != len(y) {
		panicLenMismatch("Axpy", len(x), len(y))
	}
	if a == 0 {
		return
	}
	axpy4(a, x, y)
}

// axpy4 is the raw unrolled kernel behind Axpy and the AxpySkip segments;
// x and y must have equal length.
func axpy4(a float64, x, y []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	y = y[:n]
	g := n &^ 3
	for j := 0; j < g; j += 4 {
		y[j] += a * x[j]
		y[j+1] += a * x[j+1]
		y[j+2] += a * x[j+2]
		y[j+3] += a * x[j+3]
	}
	for j := g; j < n; j++ {
		y[j] += a * x[j]
	}
}

// Scale computes x *= a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow for the
// magnitudes seen in this codebase via a scaled accumulation.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SqDist returns the squared Euclidean distance between x and y.
//
// Fast tier: the accumulation order is reassociated (4 independent lanes)
// and not part of any bit-identity contract — every call site (KDE/LOF
// distances, RBF kernels, the JL transform) is pinned by tolerance tests
// only.
func SqDist(x, y []float64) float64 {
	return sqDist4(x, y)
}

func sqDist4(x, y []float64) float64 {
	if len(x) != len(y) {
		panicLenMismatch("SqDist", len(x), len(y))
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n]
	var s0, s1, s2, s3 float64
	g := n &^ 3
	for j := 0; j < g; j += 4 {
		d0 := x[j] - y[j]
		d1 := x[j+1] - y[j+1]
		d2 := x[j+2] - y[j+2]
		d3 := x[j+3] - y[j+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for j := g; j < n; j++ {
		d := x[j] - y[j]
		s += d * d
	}
	return s
}

// AddTo computes dst = x + y. dst may alias x or y.
func AddTo(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("linalg: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}
