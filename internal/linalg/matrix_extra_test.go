package linalg

import "testing"

func TestMulDimensionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Mul":           func() { Mul(NewMatrix(2, 3), NewMatrix(2, 3)) },
		"MulTransposed": func() { MulTransposed(NewMatrix(2, 3), NewMatrix(2, 4)) },
		"MulVec":        func() { NewMatrix(2, 3).MulVec([]float64{1}, nil) },
		"NewMatrix":     func() { NewMatrix(-1, 2) },
		"FromRows":      func() { FromRows([][]float64{{1, 2}, {3}}) },
		"Axpy":          func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"SqDist":        func() { SqDist([]float64{1}, []float64{1, 2}) },
		"AddTo":         func() { AddTo([]float64{1}, []float64{1, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad dims did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("empty FromRows = %dx%d", m.Rows, m.Cols)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2}
	Scale(3, x)
	if x[0] != 3 || x[1] != 6 {
		t.Errorf("Scale = %v", x)
	}
	dst := make([]float64, 2)
	AddTo(dst, []float64{1, 1}, []float64{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("AddTo = %v", dst)
	}
	Fill(dst, 9)
	if dst[0] != 9 || dst[1] != 9 {
		t.Errorf("Fill = %v", dst)
	}
	c := Clone(dst)
	c[0] = 0
	if dst[0] != 9 {
		t.Error("Clone shares storage")
	}
}

func TestColBufferReuse(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	buf := make([]float64, 2)
	col := m.Col(1, buf)
	if &col[0] != &buf[0] {
		t.Error("Col did not reuse the buffer")
	}
	if col[0] != 2 || col[1] != 4 {
		t.Errorf("Col = %v", col)
	}
	if m.Bytes() != 32 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
}
