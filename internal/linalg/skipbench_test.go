package linalg

import "testing"

// Skip-kernel microbenchmarks: the masked training path's per-op cost must
// stay at parity with the contiguous kernels (the two-range loops compile to
// the same bounds-check-free code), or masked training loses its copy
// savings back in the coordinate-descent inner loop.

var sinkF float64

func benchVecs(n int) ([]float64, []float64) {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) * 0.25
		y[i] = float64(i%5) * 0.5
	}
	return x, y
}

func BenchmarkDot1024(b *testing.B) {
	x, y := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		sinkF += Dot(x, y)
	}
}

func BenchmarkDotSkip1024(b *testing.B) {
	x, y := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		sinkF += DotSkip(x, y, 512)
	}
}

func BenchmarkAxpy1024(b *testing.B) {
	x, y := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		Axpy(0.001, x, y)
	}
}

func BenchmarkAxpySkip1024(b *testing.B) {
	x, y := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		AxpySkip(0.001, x, y, 512)
	}
}

func BenchmarkSqNormSkip1024(b *testing.B) {
	x, _ := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		sinkF += SqNormSkip(x, 512)
	}
}

func BenchmarkDotFast1024(b *testing.B) {
	x, y := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		sinkF += DotFast(x, y)
	}
}

func BenchmarkSqDist1024(b *testing.B) {
	x, y := benchVecs(1024)
	for i := 0; i < b.N; i++ {
		sinkF += SqDist(x, y)
	}
}

func benchVecs32(n int) ([]float64, []float32) {
	w := make([]float64, n)
	x := make([]float32, n)
	for i := range w {
		w[i] = float64(i%7) * 0.25
		x[i] = float32(i%5) * 0.5
	}
	return w, x
}

func BenchmarkDotSkip32_1024(b *testing.B) {
	w, x := benchVecs32(1024)
	for i := 0; i < b.N; i++ {
		sinkF += DotSkip32(w, x, 512)
	}
}

func BenchmarkAxpySkip32_1024(b *testing.B) {
	w, x := benchVecs32(1024)
	for i := 0; i < b.N; i++ {
		AxpySkip32(0.001, x, w, 512)
	}
}

func BenchmarkSqNormSkip32_1024(b *testing.B) {
	_, x := benchVecs32(1024)
	for i := 0; i < b.N; i++ {
		sinkF += SqNormSkip32(x, 512)
	}
}
