package linalg

import (
	"fmt"

	"frac/internal/parallel"
)

//go:noinline
func panicBadDims(op string, rows, cols int) {
	panic(fmt.Sprintf("linalg: %s negative dimension %dx%d", op, rows, cols))
}

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panicBadDims("NewMatrix", rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Resize returns a rows x cols matrix that reuses m's backing array when it
// has the capacity (m may be nil). The returned matrix's contents are
// unspecified — callers must overwrite every cell. This is the reuse
// primitive behind the per-worker scratch matrices of the train/score hot
// paths.
func Resize(m *Matrix, rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panicBadDims("Resize", rows, cols)
	}
	n := rows * cols
	if m == nil {
		return NewMatrix(rows, cols)
	}
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// FromRows builds a matrix from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: FromRows ragged row %d: %d vs %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns row i as a mutable slice view.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Col copies column j into dst (allocating when dst is nil or short) and
// returns it.
func (m *Matrix) Col(j int, dst []float64) []float64 {
	if cap(dst) < m.Rows {
		dst = make([]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Cols+j]
	}
	return dst
}

// MulVec computes dst = m * x for a column vector x of length m.Cols,
// returning dst (allocated when nil or short).
func (m *Matrix) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dim mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	if cap(dst) < m.Rows {
		dst = make([]float64, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		dst[i] = DotFast(m.Row(i), x) // fast tier: callers are tolerance-pinned
	}
	return dst
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns the product a*b, parallelized across rows of a. It panics on a
// dimension mismatch.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dim mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	parallel.For(a.Rows, func(i int) {
		arow := a.Row(i)
		orow := out.Row(i)
		// k-major inner ordering keeps b access sequential (cache friendly).
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	})
	return out
}

// MulTransposed returns a * bᵀ without materializing the transpose; each
// output element is a row-row dot product, parallelized across rows of a.
func MulTransposed(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulTransposed dim mismatch: %dx%d * (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	parallel.For(a.Rows, func(i int) {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = DotFast(arow, b.Row(j)) // fast tier: tolerance-pinned call sites
		}
	})
	return out
}

// Bytes reports the memory footprint of the matrix payload.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 8 }
