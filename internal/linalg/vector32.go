package linalg

// Float32 kernel tier (DESIGN.md §12): mixed-precision operations over
// float32 storage with float64 accumulation, used by the opt-in
// Config.Float32Design path. The design matrix is stored as float32 for ~2×
// memory bandwidth, but every product and partial sum is computed in
// float64 and model weights stay float64, so the only precision loss is the
// one rounding of each stored cell. There is NO bit-identity contract on
// this tier — the float32 path is pinned by tolerance goldens only — but
// the kernels mirror the exact tier's 4-wide logical-lane structure so the
// dense and skip variants agree with each other and with the same schedule
// the float64 path runs.

// Dot32 returns Σ w[i]·x[i] with x read as float64, over the 4-wide lane
// order of Dot.
func Dot32(w []float64, x []float32) float64 {
	return dot32(w, x)
}

func dot32(w []float64, x []float32) float64 {
	if len(w) != len(x) {
		panicLenMismatch("Dot32", len(w), len(x))
	}
	n := len(w)
	if n == 0 {
		return 0
	}
	x = x[:n]
	var s0, s1, s2, s3 float64
	g := n &^ 3
	for j := 0; j < g; j += 4 {
		s0 += w[j] * float64(x[j])
		s1 += w[j+1] * float64(x[j+1])
		s2 += w[j+2] * float64(x[j+2])
		s3 += w[j+3] * float64(x[j+3])
	}
	s := (s0 + s1) + (s2 + s3)
	for j := g; j < n; j++ {
		s += w[j] * float64(x[j])
	}
	return s
}

// Axpy32 computes w[i] += a·x[i] with x read as float64. It panics if the
// lengths differ.
func Axpy32(a float64, x []float32, w []float64) {
	axpy32Checked(a, x, w)
}

func axpy32Checked(a float64, x []float32, w []float64) {
	if len(x) != len(w) {
		panicLenMismatch("Axpy32", len(x), len(w))
	}
	if a == 0 {
		return
	}
	axpy32(a, x, w)
}

func axpy32(a float64, x []float32, w []float64) {
	n := len(x)
	if n == 0 {
		return
	}
	w = w[:n]
	g := n &^ 3
	for j := 0; j < g; j += 4 {
		w[j] += a * float64(x[j])
		w[j+1] += a * float64(x[j+1])
		w[j+2] += a * float64(x[j+2])
		w[j+3] += a * float64(x[j+3])
	}
	for j := g; j < n; j++ {
		w[j] += a * float64(x[j])
	}
}

// DotSkip32 returns Σ w[p]·x[p] over every index except skip, with the same
// three-segment logical-lane structure as DotSkip, so it equals Dot32 on
// the gathered vectors.
func DotSkip32(w []float64, x []float32, skip int) float64 {
	return dotSkip32(w, x, skip)
}

func dotSkip32(w []float64, x []float32, skip int) float64 {
	if len(w) != len(x) {
		panicLenMismatch("DotSkip32", len(w), len(x))
	}
	if skip < 0 || skip >= len(x) {
		panicBadSkip("DotSkip32", skip, len(x))
	}
	n := len(x)
	w = w[:n]
	m := n - 1  // logical (gathered) length
	g := m &^ 3 // unrolled-group end over logical indices
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= g && j+4 <= skip; j += 4 {
		s0 += w[j] * float64(x[j])
		s1 += w[j+1] * float64(x[j+1])
		s2 += w[j+2] * float64(x[j+2])
		s3 += w[j+3] * float64(x[j+3])
	}
	if j+4 <= g && j < skip {
		p0, p1, p2, p3 := skipIdx(j, skip), skipIdx(j+1, skip), skipIdx(j+2, skip), skipIdx(j+3, skip)
		s0 += w[p0] * float64(x[p0])
		s1 += w[p1] * float64(x[p1])
		s2 += w[p2] * float64(x[p2])
		s3 += w[p3] * float64(x[p3])
		j += 4
	}
	for ; j+4 <= g; j += 4 {
		s0 += w[j+1] * float64(x[j+1])
		s1 += w[j+2] * float64(x[j+2])
		s2 += w[j+3] * float64(x[j+3])
		s3 += w[j+4] * float64(x[j+4])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; j < m; j++ {
		p := skipIdx(j, skip)
		s += w[p] * float64(x[p])
	}
	return s
}

// AxpySkip32 computes w[p] += a·x[p] for every index except skip, leaving
// w[skip] untouched, as two dense unrolled segments.
func AxpySkip32(a float64, x []float32, w []float64, skip int) {
	axpySkip32(a, x, w, skip)
}

func axpySkip32(a float64, x []float32, w []float64, skip int) {
	if len(x) != len(w) {
		panicLenMismatch("AxpySkip32", len(x), len(w))
	}
	if skip < 0 || skip >= len(x) {
		panicBadSkip("AxpySkip32", skip, len(x))
	}
	if a == 0 {
		return
	}
	axpy32(a, x[:skip], w[:skip])
	axpy32(a, x[skip+1:], w[skip+1:])
}

// SqNormSkip32 returns Σ x[p]² (float64 accumulation) over every index
// except skip, with DotSkip32's lane structure.
func SqNormSkip32(x []float32, skip int) float64 {
	return sqNormSkip32(x, skip)
}

func sqNormSkip32(x []float32, skip int) float64 {
	if skip < 0 || skip >= len(x) {
		panicBadSkip("SqNormSkip32", skip, len(x))
	}
	m := len(x) - 1
	g := m &^ 3
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= g && j+4 <= skip; j += 4 {
		v0, v1, v2, v3 := float64(x[j]), float64(x[j+1]), float64(x[j+2]), float64(x[j+3])
		s0 += v0 * v0
		s1 += v1 * v1
		s2 += v2 * v2
		s3 += v3 * v3
	}
	if j+4 <= g && j < skip {
		v0 := float64(x[skipIdx(j, skip)])
		v1 := float64(x[skipIdx(j+1, skip)])
		v2 := float64(x[skipIdx(j+2, skip)])
		v3 := float64(x[skipIdx(j+3, skip)])
		s0 += v0 * v0
		s1 += v1 * v1
		s2 += v2 * v2
		s3 += v3 * v3
		j += 4
	}
	for ; j+4 <= g; j += 4 {
		v0, v1, v2, v3 := float64(x[j+1]), float64(x[j+2]), float64(x[j+3]), float64(x[j+4])
		s0 += v0 * v0
		s1 += v1 * v1
		s2 += v2 * v2
		s3 += v3 * v3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; j < m; j++ {
		v := float64(x[skipIdx(j, skip)])
		s += v * v
	}
	return s
}
