package linalg

import (
	"os/exec"
	"regexp"
	"testing"
)

// TestKernelWrappersInline is the CI form of the -gcflags=-m check: every
// exported kernel wrapper must stay inlinable into callers. The wrappers are
// deliberately a single forwarding call with validation moved into the
// outlined kernel — two outlined calls (panic helper + kernel) exceed the
// compiler's inlining budget, one fits — and this test fails if a future
// edit (an extra check, a fmt call) pushes one back over the budget.
func TestKernelWrappersInline(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go tool")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	// -m diagnostics land on stderr; the package dir is the test's cwd.
	out, err := exec.Command(goBin, "build", "-gcflags=-m", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m: %v\n%s", err, out)
	}
	for _, fn := range []string{
		"Dot", "Axpy", "DotSkip", "AxpySkip", "SqNormSkip",
		"DotFast", "SqDist",
		"Dot32", "DotSkip32", "AxpySkip32", "SqNormSkip32",
	} {
		re := regexp.MustCompile(`can inline ` + fn + `\b`)
		if !re.Match(out) {
			t.Errorf("%s is no longer inlinable (no %q in -gcflags=-m output)", fn, re)
		}
	}
}
