package linalg

import (
	"math"
	"testing"
)

// Property tests pinning the unrolled kernels to naive scalar reference
// implementations. The exact-order tier (Dot, Axpy, DotSkip, AxpySkip,
// SqNormSkip) must match its frozen-order reference bit for bit at every
// length 0..67 and every skip position, including NaN/±0/denormal inputs —
// the frozen order is a documented contract (package comment, DESIGN.md
// §12), so any change here is a breaking change that invalidates golden
// pins. The fast reassociated tier (DotFast, SqDist) and the float32 tier
// are pinned structurally: the float32 kernels must equal the frozen-order
// reference on the widened values exactly (their ops are float64), and the
// fast kernels must stay ulp-bounded against a sequential reference.

const refMaxLen = 67 // spans 0, sub-group tails, and 16+ full 4-groups

// refValues fills deterministic test vectors mixing magnitudes with the
// special values the kernels must handle: NaN is exercised only where a
// test says so (NaN poisons exact comparison of unrelated lanes in
// ulp-bounded checks), but ±0 and denormals appear everywhere.
func refValues(n int, state *uint64) []float64 {
	next := func() float64 {
		*state = *state*6364136223846793005 + 1442695040888963407
		return float64(*state>>11)/float64(1<<53)*2 - 1
	}
	out := make([]float64, n)
	for i := range out {
		switch i % 7 {
		case 3:
			out[i] = math.Copysign(0, next()) // ±0
		case 5:
			out[i] = math.SmallestNonzeroFloat64 * math.Round(next()*8) // denormal
		default:
			out[i] = next() * math.Pow(2, math.Round(next()*20))
		}
	}
	return out
}

// refDot is the scalar specification of the frozen exact-tier order: lane
// s[j%4] accumulates element j of the first n-n%4 elements, lanes combine
// as (s0+s1)+(s2+s3), and the tail adds sequentially.
func refDot(x, y []float64) float64 {
	n := len(x)
	g := n - n%4
	var s [4]float64
	for j := 0; j < g; j++ {
		s[j%4] += x[j] * y[j]
	}
	sum := (s[0] + s[1]) + (s[2] + s[3])
	for j := g; j < n; j++ {
		sum += x[j] * y[j]
	}
	return sum
}

// refSeqDot is the plain sequential dot product — the reference the
// fast reassociated tier is ulp-bounded against.
func refSeqDot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

func gatherRef(x []float64, skip int) []float64 {
	out := make([]float64, 0, len(x)-1)
	out = append(out, x[:skip]...)
	return append(out, x[skip+1:]...)
}

func TestDotMatchesFrozenOrderReference(t *testing.T) {
	state := uint64(0x1234_5678_9abc_def0)
	for n := 0; n <= refMaxLen; n++ {
		x := refValues(n, &state)
		y := refValues(n, &state)
		if got, want := Dot(x, y), refDot(x, y); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("n=%d: Dot = %v (bits %016x), frozen-order ref = %v (bits %016x)",
				n, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
}

func TestDotNaNPropagates(t *testing.T) {
	x := []float64{1, math.NaN(), 3, 4, 5}
	y := []float64{1, 2, 3, 4, 5}
	if got := Dot(x, y); !math.IsNaN(got) {
		t.Errorf("Dot with NaN input = %v, want NaN", got)
	}
	if got := DotSkip(x, y, 1); math.IsNaN(got) {
		t.Errorf("DotSkip skipping the NaN column = %v, want finite", got)
	}
}

func TestSkipKernelsMatchFrozenOrderReference(t *testing.T) {
	state := uint64(0xfeed_face_cafe_beef)
	for n := 1; n <= refMaxLen; n++ {
		x := refValues(n, &state)
		y := refValues(n, &state)
		for skip := 0; skip < n; skip++ {
			gx, gy := gatherRef(x, skip), gatherRef(y, skip)
			if got, want := DotSkip(x, y, skip), refDot(gx, gy); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d skip=%d: DotSkip = %v, frozen-order ref on gathered = %v", n, skip, got, want)
			}
			if got, want := SqNormSkip(x, skip), refDot(gx, gx); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d skip=%d: SqNormSkip = %v, frozen-order ref = %v", n, skip, got, want)
			}
		}
	}
}

func TestAxpyMatchesNaiveReference(t *testing.T) {
	state := uint64(0x0dd_ba11)
	for n := 0; n <= refMaxLen; n++ {
		x := refValues(n, &state)
		base := refValues(n, &state)
		for _, a := range []float64{0, 1, -2.5, math.SmallestNonzeroFloat64} {
			got := append([]float64(nil), base...)
			want := append([]float64(nil), base...)
			Axpy(a, x, got)
			if a != 0 { // contract: a == 0 is a no-op, even over NaN x
				for i := range want {
					want[i] += a * x[i]
				}
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d a=%v elem %d: Axpy = %v, naive = %v", n, a, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAxpySkipMatchesNaiveReference(t *testing.T) {
	state := uint64(0xa11_0ca7ed)
	for n := 1; n <= refMaxLen; n++ {
		x := refValues(n, &state)
		base := refValues(n, &state)
		for skip := 0; skip < n; skip++ {
			got := append([]float64(nil), base...)
			want := append([]float64(nil), base...)
			AxpySkip(-1.75, x, got, skip)
			for i := range want {
				if i != skip {
					want[i] += -1.75 * x[i]
				}
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d skip=%d elem %d: AxpySkip = %v, naive = %v", n, skip, i, got[i], want[i])
				}
			}
		}
	}
}

// ulpBound returns an accumulation-error bound for comparing a reassociated
// sum against a sequential one: both are within n·eps·Σ|terms| of the true
// value, so they are within twice that of each other.
func ulpBound(n int, termSum float64) float64 {
	return 2 * float64(n+1) * 0x1p-52 * termSum
}

func TestDotFastUlpBoundedAgainstSequential(t *testing.T) {
	state := uint64(0xf457_d07)
	for n := 0; n <= refMaxLen; n++ {
		x := refValues(n, &state)
		y := refValues(n, &state)
		got := DotFast(x, y)
		want := refSeqDot(x, y)
		var mag float64
		for i := range x {
			mag += math.Abs(x[i] * y[i])
		}
		if diff := math.Abs(got - want); diff > ulpBound(n, mag) {
			t.Errorf("n=%d: DotFast = %v, sequential = %v, diff %v > bound %v",
				n, got, want, diff, ulpBound(n, mag))
		}
	}
	// NaN propagates through the fast tier too.
	if got := DotFast([]float64{1, math.NaN()}, []float64{1, 1}); !math.IsNaN(got) {
		t.Errorf("DotFast with NaN = %v, want NaN", got)
	}
}

func TestSqDistUlpBoundedAgainstSequential(t *testing.T) {
	state := uint64(0x5fd6_57)
	for n := 0; n <= refMaxLen; n++ {
		x := refValues(n, &state)
		y := refValues(n, &state)
		got := SqDist(x, y)
		var want, mag float64
		for i := range x {
			d := x[i] - y[i]
			want += d * d
			mag += d * d
		}
		if diff := math.Abs(got - want); diff > ulpBound(n, mag) {
			t.Errorf("n=%d: SqDist = %v, sequential = %v, diff %v", n, got, want, diff)
		}
	}
}

// widen32 converts float32 storage back to the float64 values the mixed-
// precision kernels actually operate on.
func widen32(x []float32) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}

func narrow32(x []float64) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(v)
	}
	return out
}

// The float32 kernels do all arithmetic in float64 over widened cells, with
// the same frozen lane order as the exact tier — so against the
// frozen-order reference on the widened values they are EXACT; the only
// precision loss in the Float32Design pipeline is the one rounding of each
// stored cell, which happens before the kernel runs.
func TestFloat32KernelsMatchWidenedReference(t *testing.T) {
	state := uint64(0x32_32_32_32)
	for n := 1; n <= refMaxLen; n++ {
		w := refValues(n, &state)
		x32 := narrow32(refValues(n, &state))
		xw := widen32(x32)
		if got, want := Dot32(w, x32), refDot(w, xw); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("n=%d: Dot32 = %v, frozen-order ref on widened = %v", n, got, want)
		}
		for skip := 0; skip < n; skip++ {
			gw, gx := gatherRef(w, skip), gatherRef(xw, skip)
			if got, want := DotSkip32(w, x32, skip), refDot(gw, gx); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d skip=%d: DotSkip32 = %v, ref = %v", n, skip, got, want)
			}
			if got, want := SqNormSkip32(x32, skip), refDot(gx, gx); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("n=%d skip=%d: SqNormSkip32 = %v, ref = %v", n, skip, got, want)
			}
			got := append([]float64(nil), w...)
			want := append([]float64(nil), w...)
			AxpySkip32(0.375, x32, got, skip)
			for i := range want {
				if i != skip {
					want[i] += 0.375 * xw[i]
				}
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d skip=%d elem %d: AxpySkip32 = %v, naive = %v", n, skip, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFloat32KernelSpecialValues(t *testing.T) {
	x := []float32{1, float32(math.NaN()), 3, 4}
	w := []float64{1, 1, 1, 1}
	if got := Dot32(w, x); !math.IsNaN(got) {
		t.Errorf("Dot32 with NaN cell = %v, want NaN", got)
	}
	if got := DotSkip32(w, x, 1); got != 8 {
		t.Errorf("DotSkip32 skipping the NaN cell = %v, want 8", got)
	}
	negZero := []float32{float32(math.Copysign(0, -1)), 1, 2, 3, 4}
	if got := SqNormSkip32(negZero, 4); got != 1+4+9 {
		t.Errorf("SqNormSkip32 with -0 cell = %v, want 14", got)
	}
}
