package linalg

// Fast reassociated kernel tier (DESIGN.md §12). Unlike Dot/DotSkip, the
// accumulation order here is NOT a contract: lanes and combine order may
// change whenever a faster schedule is found. Only call sites whose outputs
// are pinned by tolerance tests may use this tier — today the matrix
// products (MulVec, MulTransposed), the one-class SVM gradient, and the
// linear kernel evaluation. Anything feeding the masked-training
// bit-identity contract must stay on the exact tier.

// DotFast returns the inner product of x and y using eight independent
// accumulator lanes. The result generally differs from Dot in the last few
// ulps because the partial sums are reassociated. It panics if the lengths
// differ.
func DotFast(x, y []float64) float64 {
	return dotFast8(x, y)
}

func dotFast8(x, y []float64) float64 {
	if len(x) != len(y) {
		panicLenMismatch("DotFast", len(x), len(y))
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	y = y[:n] // bounds-check elimination hint
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	g := n &^ 7
	for j := 0; j < g; j += 8 {
		s0 += x[j] * y[j]
		s1 += x[j+1] * y[j+1]
		s2 += x[j+2] * y[j+2]
		s3 += x[j+3] * y[j+3]
		s4 += x[j+4] * y[j+4]
		s5 += x[j+5] * y[j+5]
		s6 += x[j+6] * y[j+6]
		s7 += x[j+7] * y[j+7]
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for j := g; j < n; j++ {
		s += x[j] * y[j]
	}
	return s
}
