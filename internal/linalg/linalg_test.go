package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
	if d := Dot(nil, nil); d != 0 {
		t.Errorf("empty Dot = %v", d)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Dot did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	Axpy(0, []float64{100, 100}, y) // no-op path
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy(0) changed y: %v", y)
	}
}

func TestNorm2(t *testing.T) {
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Errorf("Norm2 = %v", n)
	}
	if n := Norm2(nil); n != 0 {
		t.Errorf("Norm2(nil) = %v", n)
	}
	// Overflow-safe for huge components.
	if n := Norm2([]float64{1e300, 1e300}); math.IsInf(n, 0) {
		t.Error("Norm2 overflowed")
	}
}

func TestSqDist(t *testing.T) {
	if d := SqDist([]float64{1, 2}, []float64{4, 6}); d != 25 {
		t.Errorf("SqDist = %v, want 25", d)
	}
}

func TestMatrixRowColSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At roundtrip failed")
	}
	row := m.Row(1)
	row[0] = 5 // views are mutable
	if m.At(1, 0) != 5 {
		t.Error("Row must be a mutable view")
	}
	col := m.Col(0, nil)
	if len(col) != 2 || col[1] != 5 {
		t.Errorf("Col = %v", col)
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v", c.Data)
			}
		}
	}
}

func TestMulTransposedMatchesMul(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%5 + 2
		a := NewMatrix(n, n+1)
		b := NewMatrix(n+2, n+1)
		s := float64(seed) + 1
		for i := range a.Data {
			s = math.Mod(s*37+11, 101)
			a.Data[i] = s
		}
		for i := range b.Data {
			s = math.Mod(s*37+11, 101)
			b.Data[i] = s
		}
		got := MulTransposed(a, b)
		want := Mul(a, b.Transpose())
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := m.MulVec([]float64{1, 2, 3}, nil)
	if got[0] != 7 || got[1] != 6 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

// gatherSkip copies every element of x except index skip, in order.
func gatherSkip(x []float64, skip int) []float64 {
	out := make([]float64, 0, len(x)-1)
	for i, v := range x {
		if i != skip {
			out = append(out, v)
		}
	}
	return out
}

// TestSkipKernelsBitIdenticalToGather is the exact-FP-order contract of the
// skip kernels: for random vectors (including signed zeros and denormals)
// and every skip position, each kernel must reproduce gather-then-contiguous
// bit for bit — the partial-sum chains visit the same values in the same
// order.
func TestSkipKernelsBitIdenticalToGather(t *testing.T) {
	state := uint64(0x1234_5678_9abc_def0)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := float64(state>>11)/float64(1<<53)*4 - 2
		if state%17 == 0 {
			v = math.Copysign(0, v) // exercise ±0
		}
		return v
	}
	for _, n := range []int{1, 2, 3, 7, 64} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = next(), next()
		}
		for skip := 0; skip < n; skip++ {
			gx, gy := gatherSkip(x, skip), gatherSkip(y, skip)
			if got, want := DotSkip(x, y, skip), Dot(gx, gy); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("n=%d skip=%d: DotSkip = %v (bits %016x), gather Dot = %v (bits %016x)",
					n, skip, got, math.Float64bits(got), want, math.Float64bits(want))
			}
			if got, want := SqNormSkip(x, skip), Dot(gx, gx); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("n=%d skip=%d: SqNormSkip = %v, gather Dot(v,v) = %v", n, skip, got, want)
			}
			ys := append([]float64(nil), y...)
			AxpySkip(0.75, x, ys, skip)
			Axpy(0.75, gx, gy)
			for i, j := 0, 0; i < n; i++ {
				if i == skip {
					if ys[i] != y[i] {
						t.Errorf("n=%d skip=%d: AxpySkip touched the skip element", n, skip)
					}
					continue
				}
				if math.Float64bits(ys[i]) != math.Float64bits(gy[j]) {
					t.Errorf("n=%d skip=%d elem %d: AxpySkip = %v, gather Axpy = %v", n, skip, i, ys[i], gy[j])
				}
				j++
			}
		}
	}
}

func TestSkipKernelsPanicOnBadSkip(t *testing.T) {
	x := []float64{1, 2, 3}
	for _, skip := range []int{-1, 3} {
		for name, fn := range map[string]func(){
			"DotSkip":    func() { DotSkip(x, x, skip) },
			"AxpySkip":   func() { AxpySkip(1, x, append([]float64(nil), x...), skip) },
			"SqNormSkip": func() { SqNormSkip(x, skip) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s(skip=%d) did not panic", name, skip)
					}
				}()
				fn()
			}()
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("DotSkip length mismatch did not panic")
		}
	}()
	DotSkip(x, x[:2], 0)
}
